// Unit tests for the baseline prefetchers: FDP (paper §3.1),
// next-N-line (§2.1), the stream/discontinuity scheme, MANA
// (arXiv 2102.01764) and the program-map traversal scheme
// (arXiv 2406.06738), plus the NonePrefetcher contract and the
// prefetcher registry.
#include <gtest/gtest.h>

#include "frontend/fetch_queue.hpp"
#include "mem/ifetch_caches.hpp"
#include "mem/memsys.hpp"
#include "prefetch/fdp.hpp"
#include "prefetch/mana.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/prefetcher.hpp"
#include "prefetch/program_map.hpp"
#include "prefetch/registry.hpp"
#include "prefetch/stream.hpp"

namespace prestage::prefetch {
namespace {

struct FdpRig {
  frontend::FetchTargetQueue ftq{8, 64};
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  FdpPrefetcher fdp;

  explicit FdpRig(const FdpConfig& cfg = {}, bool with_l0 = false)
      : caches(make_caches(with_l0)), mem(make_mem()), fdp(cfg, ftq, caches, mem) {}

  static mem::IFetchCaches make_caches(bool l0) {
    mem::IFetchCachesConfig c;
    c.l1_size_bytes = 4096;
    c.l1_latency = 4;
    c.has_l0 = l0;
    return mem::IFetchCaches(c);
  }
  static mem::MemSystem make_mem() {
    mem::MemSystemConfig c;
    c.l2_latency = 10;
    c.mem_latency = 50;
    return mem::MemSystem(c);
  }

  void push_block(Addr start, std::uint32_t len = 8) {
    frontend::FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 0;
    b.wrong_from = len;
    ftq.push_block(b);
  }

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      fdp.tick(t);
    }
  }
};

TEST(Fdp, PrefetchesFtqLinesIntoBuffer) {
  FdpRig rig;
  rig.mem.l2().insert(0x1000);  // L2-resident: fill at L2 latency
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetches_issued.value(), 1u);
  EXPECT_EQ(rig.fdp.prefetch_sources().count(FetchSource::L2), 1u);
}

TEST(Fdp, EnqueueCacheProbeFilteringSkipsResidentLines) {
  // Paper §3.1: the configuration compared in the results uses Enqueue
  // Cache Probe Filtering against the I-cache tags.
  FdpRig rig;
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetches_issued.value(), 0u);
  EXPECT_EQ(rig.fdp.requests_filtered.value(), 1u);
}

TEST(Fdp, WithL0FiltersOnlyAgainstL0AndPrefetchesFromL1) {
  // Paper §3.1.1: with an L0, prefetches are served by the L1 so its
  // multi-cycle hit latency stops hurting the fetch stage.
  FdpConfig cfg;
  FdpRig rig(cfg, /*with_l0=*/true);
  rig.caches.l1().insert(0x1000);  // in L1 but not L0
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetch_sources().count(FetchSource::L1), 1u);
}

TEST(Fdp, ConsumedLinePromotesAndFrees) {
  // Paper §3.1: "when a line from the prefetch buffer is used... it is
  // transferred to the I-cache and the entry is marked as available".
  FdpRig rig;
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 30);
  ASSERT_TRUE(rig.fdp.probe(0x1000).present);
  rig.fdp.on_fetch_from_pb(0x1000, 31);
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);  // entry freed
  EXPECT_TRUE(rig.caches.probe_l1(0x1000));     // moved into L1
}

TEST(Fdp, PromotionTargetsL0WhenPresent) {
  FdpRig rig({}, /*with_l0=*/true);
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 30);
  rig.fdp.on_fetch_from_pb(0x1000, 31);
  EXPECT_TRUE(rig.caches.probe_l0(0x1000));
  EXPECT_FALSE(rig.caches.probe_l1(0x1000));  // not replicated into L1
}

TEST(Fdp, ConsumeWhileInFlightPromotesOnFill) {
  FdpRig rig;
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.mem.tick(0);
  rig.fdp.tick(0);  // request in flight
  ASSERT_TRUE(rig.fdp.probe(0x1000).present);
  rig.fdp.on_fetch_from_pb(0x1000, 1);  // fetch wants it already
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.caches.probe_l1(0x1000));
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);
}

TEST(Fdp, BufferFullStallsScan) {
  FdpConfig cfg;
  cfg.entries = 2;
  FdpRig rig(cfg);
  rig.push_block(0x1000);
  rig.push_block(0x2000);
  rig.push_block(0x3000);
  rig.run_cycles(0, 5);  // fills in flight: entries not reclaimable
  EXPECT_FALSE(rig.fdp.probe(0x3000).present);
  EXPECT_GT(rig.fdp.pb_occupancy_stalls.value(), 0u);
}

TEST(Fdp, LruFallbackReclaimsArrivedUnusedEntries) {
  // Wrong-path leftovers must not wedge the buffer (DESIGN.md deviation).
  FdpConfig cfg;
  cfg.entries = 2;
  FdpRig rig(cfg);
  rig.mem.l2().insert(0x1000);
  rig.mem.l2().insert(0x2000);
  rig.push_block(0x1000);
  rig.push_block(0x2000);
  rig.run_cycles(0, 30);  // both arrived, neither consumed
  rig.push_block(0x3000);
  rig.run_cycles(31, 99);
  EXPECT_TRUE(rig.fdp.probe(0x3000).present);  // reclaimed an LRU entry
}

TEST(Fdp, ScanCoversMultipleBlocksInOrder) {
  FdpRig rig;
  rig.push_block(0x1000, 32);  // 2 lines
  rig.push_block(0x4000, 8);   // 1 line
  rig.run_cycles(0, 40);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_TRUE(rig.fdp.probe(0x1040).present);
  EXPECT_TRUE(rig.fdp.probe(0x4000).present);
}

TEST(NonePrefetcher, NeverPresent) {
  NonePrefetcher none;
  EXPECT_FALSE(none.probe(0x1000).present);
  EXPECT_EQ(none.pb_port(), nullptr);
  EXPECT_EQ(none.prefetches(), 0u);
}

struct NlRig {
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  NextLinePrefetcher nl;

  explicit NlRig(const NextLineConfig& cfg = {})
      : caches(FdpRig::make_caches(false)),
        mem(FdpRig::make_mem()),
        nl(cfg, caches, mem) {}

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      nl.tick(t);
    }
  }
};

TEST(NextLine, PrefetchesSequentialSuccessors) {
  NextLineConfig cfg;
  cfg.degree = 2;
  NlRig rig(cfg);
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.nl.probe(0x1040).present);
  EXPECT_TRUE(rig.nl.probe(0x1080).present);
  EXPECT_FALSE(rig.nl.probe(0x10C0).present);  // degree 2 only
}

TEST(NextLine, SkipsResidentLines) {
  NlRig rig;
  rig.caches.fill_demand(0x1040);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  EXPECT_FALSE(rig.nl.probe(0x1040).present);  // already in L1
  EXPECT_TRUE(rig.nl.probe(0x1080).present);
}

TEST(NextLine, ConsumePromotesAndFrees) {
  NlRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  rig.nl.on_fetch_from_pb(0x1040, 31);
  EXPECT_FALSE(rig.nl.probe(0x1040).present);
  EXPECT_TRUE(rig.caches.probe_l1(0x1040));
}

// --- stream/discontinuity prefetcher ---------------------------------------

struct StreamRig {
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  StreamPrefetcher stream;

  explicit StreamRig(const StreamConfig& cfg = {})
      : caches(FdpRig::make_caches(false)),
        mem(FdpRig::make_mem()),
        stream(cfg, caches, mem) {}

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      stream.tick(t);
    }
  }

  /// Feeds a consecutive run of @p lines starting at @p start.
  void request_run(Addr start, int lines, Cycle now) {
    for (int i = 0; i < lines; ++i) {
      stream.on_line_request(start + static_cast<Addr>(i) * 64, now);
    }
  }
};

TEST(Stream, RecordsARegionOnDiscontinuity) {
  StreamRig rig;
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);        // 0x1000..0x1080 sequential
  EXPECT_EQ(rig.stream.recorded_region_lines(0x1000), 0u)
      << "region still open";
  rig.stream.on_line_request(0x8000, 0);  // discontinuity finalizes it
  EXPECT_EQ(rig.stream.recorded_region_lines(0x1000), 3u);
  EXPECT_EQ(rig.stream.regions_recorded.value(), 1u);
}

TEST(Stream, SingleLineRegionsAreNotRecorded) {
  StreamRig rig;
  rig.mem.tick(0);
  rig.stream.on_line_request(0x1000, 0);
  rig.stream.on_line_request(0x8000, 0);  // 1-line region: nothing to replay
  rig.stream.on_line_request(0x9000, 0);
  EXPECT_EQ(rig.stream.recorded_region_lines(0x1000), 0u);
  EXPECT_EQ(rig.stream.recorded_region_lines(0x8000), 0u);
}

TEST(Stream, ReplaysTheRegionOnTriggerReencounter) {
  StreamRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);
  rig.stream.on_line_request(0x8000, 0);  // record {0x1000, 3 lines}
  EXPECT_EQ(rig.stream.prefetches_issued.value(), 0u)
      << "recording alone must not prefetch";

  rig.stream.on_line_request(0x1000, 1);  // trigger re-encountered
  EXPECT_EQ(rig.stream.region_replays.value(), 1u);
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.stream.probe(0x1040).present);
  EXPECT_TRUE(rig.stream.probe(0x1080).present);
  EXPECT_FALSE(rig.stream.probe(0x10C0).present) << "region is 3 lines";
  EXPECT_EQ(rig.stream.prefetches_issued.value(), 2u);
}

TEST(Stream, ReplayStagesL1ResidentLinesFromTheL1) {
  // Unlike next-line's cache-probe filter, a replayed line that sits in
  // the multi-cycle L1 is transferred into the one-cycle buffer (paper
  // §3.1.1/§3.2.3) rather than skipped.
  StreamRig rig;
  rig.caches.fill_demand(0x1040);  // L1-resident region line
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);
  rig.stream.on_line_request(0x8000, 0);
  rig.stream.on_line_request(0x1000, 1);
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.stream.probe(0x1040).present);
  EXPECT_TRUE(rig.stream.probe(0x1080).present);
  EXPECT_EQ(rig.stream.prefetches_issued.value(), 2u);
  EXPECT_EQ(rig.stream.prefetch_sources().count(FetchSource::L1), 1u);
  EXPECT_EQ(rig.stream.prefetch_sources().count(FetchSource::L2), 1u);
}

TEST(Stream, ReplaySkipsOneCycleReachableLines) {
  // Lines already one cycle away (the L0 here, or the buffer itself)
  // are not re-staged.
  StreamConfig cfg;
  mem::IFetchCaches caches{FdpRig::make_caches(/*l0=*/true)};
  mem::MemSystem mem{FdpRig::make_mem()};
  StreamPrefetcher stream{cfg, caches, mem};
  caches.fill_promoted(0x1040);  // into the L0
  mem.tick(0);
  for (int i = 0; i < 3; ++i) stream.on_line_request(0x1000 + i * 64, 0);
  stream.on_line_request(0x8000, 0);
  stream.on_line_request(0x1000, 1);
  for (Cycle t = 1; t <= 30; ++t) {
    mem.tick(t);
    stream.tick(t);
  }
  EXPECT_FALSE(stream.probe(0x1040).present) << "L0-resident: skipped";
  EXPECT_TRUE(stream.probe(0x1080).present);
  EXPECT_EQ(stream.prefetch_sources().count(FetchSource::L0), 1u);
}

TEST(Stream, ConsumePromotesAndFrees) {
  StreamRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.tick(0);
  rig.request_run(0x1000, 2, 0);
  rig.stream.on_line_request(0x8000, 0);
  rig.stream.on_line_request(0x1000, 1);
  rig.run_cycles(1, 30);
  ASSERT_TRUE(rig.stream.probe(0x1040).present);
  rig.stream.on_fetch_from_pb(0x1040, 31);
  EXPECT_FALSE(rig.stream.probe(0x1040).present);
  EXPECT_TRUE(rig.caches.probe_l1(0x1040));
}

TEST(Stream, RecoveryAbandonsTheOpenRegionButKeepsTheTable) {
  StreamRig rig;
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);
  rig.stream.on_line_request(0x8000, 0);  // {0x1000, 3} recorded
  rig.request_run(0x2000, 3, 1);          // open wrong-path region
  rig.stream.on_recovery(2);
  rig.stream.on_line_request(0x9000, 3);  // would have finalized 0x2000
  EXPECT_EQ(rig.stream.recorded_region_lines(0x2000), 0u)
      << "recovery must drop the in-flight region";
  EXPECT_EQ(rig.stream.recorded_region_lines(0x1000), 3u)
      << "recorded regions survive recovery";
}

TEST(Stream, LongRunsChainAtTheRegionCap) {
  StreamConfig cfg;
  cfg.max_region_lines = 4;
  StreamRig rig(cfg);
  rig.mem.tick(0);
  rig.request_run(0x1000, 9, 0);  // 9 consecutive lines, cap 4
  // Cap chaining stores {0x1000,4} and {0x10C0,4}; the tail stays open.
  EXPECT_EQ(rig.stream.recorded_region_lines(0x1000), 4u);
  EXPECT_EQ(rig.stream.recorded_region_lines(0x10C0), 4u);
  EXPECT_EQ(rig.stream.regions_recorded.value(), 2u);
}

// --- MANA -------------------------------------------------------------------

struct ManaRig {
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  ManaPrefetcher mana;

  explicit ManaRig(const ManaConfig& cfg = {})
      : caches(FdpRig::make_caches(false)),
        mem(FdpRig::make_mem()),
        mana(cfg, caches, mem) {}

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      mana.tick(t);
    }
  }

  /// Feeds a consecutive run of @p lines starting at @p start.
  void request_run(Addr start, int lines, Cycle now) {
    for (int i = 0; i < lines; ++i) {
      mana.on_line_request(start + static_cast<Addr>(i) * 64, now);
    }
  }
};

TEST(Mana, RecordsARegionWithItsFootprintOnDiscontinuity) {
  ManaRig rig;
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);  // trigger 0x1000, footprint +1,+2
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0u)
      << "region still open";
  rig.mana.on_line_request(0x8000, 0);  // discontinuity finalizes it
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0b11u);
  EXPECT_EQ(rig.mana.records_created.value(), 1u);
  EXPECT_EQ(rig.mana.prefetches_issued.value(), 0u)
      << "recording alone must not prefetch";
}

TEST(Mana, FootprintIsABitmapNotARunLength) {
  ManaRig rig;
  rig.mem.tick(0);
  rig.mana.on_line_request(0x1000, 0);
  rig.mana.on_line_request(0x1080, 0);  // +2 lines -> bit 1
  rig.mana.on_line_request(0x1100, 0);  // +4 lines -> bit 3
  rig.mana.on_line_request(0x8000, 0);  // finalize
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0b1010u)
      << "only the touched lines are in the footprint";
}

TEST(Mana, ReplaysTheFootprintOnTriggerReencounter) {
  ManaRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);
  rig.mana.on_line_request(0x8000, 0);  // record {0x1000, footprint 0b11}

  rig.mana.on_line_request(0x1000, 1);  // trigger re-encountered
  EXPECT_EQ(rig.mana.record_replays.value(), 1u);
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.mana.probe(0x1040).present);
  EXPECT_TRUE(rig.mana.probe(0x1080).present);
  EXPECT_FALSE(rig.mana.probe(0x10C0).present) << "footprint is 2 lines";
  EXPECT_EQ(rig.mana.prefetches_issued.value(), 2u);
}

TEST(Mana, ChainReplayRunsAheadAcrossDiscontinuities) {
  ManaRig rig;
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);   // region A
  rig.request_run(0x8000, 2, 0);   // finalizes A, opens region B
  rig.mana.on_line_request(0x20000, 0);  // finalizes B, chains A -> B
  EXPECT_EQ(rig.mana.records_created.value(), 2u);

  rig.mana.on_line_request(0x1000, 1);
  EXPECT_EQ(rig.mana.record_replays.value(), 1u);
  EXPECT_EQ(rig.mana.chain_replays.value(), 1u)
      << "the successor record replays ahead of fetch";
  rig.run_cycles(1, 60);
  EXPECT_TRUE(rig.mana.probe(0x1040).present);
  EXPECT_TRUE(rig.mana.probe(0x1080).present);
  EXPECT_TRUE(rig.mana.probe(0x8000).present)
      << "the chained trigger itself is prestaged";
  EXPECT_TRUE(rig.mana.probe(0x8040).present);
  EXPECT_EQ(rig.mana.prefetches_issued.value(), 4u);
}

TEST(Mana, HobpEvictionInvalidatesDependentRecords) {
  ManaConfig cfg;
  cfg.hobpt_entries = 1;  // every new pattern evicts the previous one
  ManaRig rig(cfg);
  rig.mem.tick(0);
  rig.request_run(0x1000, 2, 0);
  rig.mana.on_line_request(0x100000, 0);  // record A (pattern of 0x1000)
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0b1u);
  rig.mana.on_line_request(0x100040, 0);
  rig.mana.on_line_request(0x200000, 0);  // record B evicts A's pattern
  EXPECT_EQ(rig.mana.hobp_invalidations.value(), 1u);
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0u)
      << "records lose their trigger with the evicted pattern";
  EXPECT_EQ(rig.mana.recorded_footprint(0x100000), 0b1u);
}

TEST(Mana, RecoveryAbandonsTheOpenRegionAndBreaksTheChain) {
  ManaRig rig;
  rig.mem.tick(0);
  rig.request_run(0x1000, 3, 0);
  rig.mana.on_line_request(0x8000, 0);  // {0x1000, 0b11} recorded
  rig.request_run(0x2000, 2, 1);        // open wrong-path region
  rig.mana.on_recovery(2);
  rig.request_run(0xA000, 2, 3);        // post-recovery region B
  rig.mana.on_line_request(0x20000, 4); // finalizes B, NOT chained to A
  EXPECT_EQ(rig.mana.recorded_footprint(0x2000), 0u)
      << "recovery must drop the in-flight region";
  EXPECT_EQ(rig.mana.recorded_footprint(0x1000), 0b11u)
      << "recorded regions survive recovery";
  EXPECT_EQ(rig.mana.recorded_footprint(0xA000), 0b1u);

  rig.mana.on_line_request(0x1000, 10);  // replay A: no successor
  EXPECT_EQ(rig.mana.record_replays.value(), 1u);
  EXPECT_EQ(rig.mana.chain_replays.value(), 0u)
      << "recovery breaks the successor chain at the squash point";
}

TEST(Mana, ConsumePromotesAndFrees) {
  ManaRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.tick(0);
  rig.request_run(0x1000, 2, 0);
  rig.mana.on_line_request(0x8000, 0);
  rig.mana.on_line_request(0x1000, 1);
  rig.run_cycles(1, 30);
  ASSERT_TRUE(rig.mana.probe(0x1040).present);
  rig.mana.on_fetch_from_pb(0x1040, 31);
  EXPECT_FALSE(rig.mana.probe(0x1040).present);
  EXPECT_TRUE(rig.caches.probe_l1(0x1040));
}

// --- program-map traversal --------------------------------------------------

struct ProgramMapRig {
  frontend::FetchTargetQueue ftq{8, 64};
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  ProgramMapPrefetcher pm;

  explicit ProgramMapRig(const ProgramMapConfig& cfg = {})
      : caches(FdpRig::make_caches(false)),
        mem(FdpRig::make_mem()),
        pm(cfg, ftq, caches, mem) {}

  /// An oracle-verified block, as a retired control-flow edge source.
  void push_block(Addr start, std::uint32_t len = 8) {
    frontend::FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 0;
    b.wrong_from = len;
    ftq.push_block(b);
  }

  /// A block whose tail ran down the wrong path.
  void push_partial(Addr start, std::uint32_t len, std::uint32_t wrong_from) {
    frontend::FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 0;
    b.wrong_from = wrong_from;
    ftq.push_block(b);
  }

  /// A block fetched entirely down the wrong path.
  void push_wrong(Addr start, std::uint32_t len = 8) {
    frontend::FetchBlock b;
    b.start = start;
    b.length = len;
    b.wrong_from = 0;  // oracle_base_seq stays kNoSeq: fully wrong
    ftq.push_block(b);
  }

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      pm.tick(t);
    }
  }
};

TEST(ProgramMap, RecordsConsecutiveRetiredBlocksAsEdges) {
  ProgramMapRig rig;
  rig.push_block(0x1000);
  rig.push_block(0x8000);
  rig.mem.tick(0);
  rig.pm.tick(0);
  EXPECT_EQ(rig.pm.recorded_edges(0x1000), 1u);
  EXPECT_EQ(rig.pm.nodes_recorded.value(), 1u);
  EXPECT_EQ(rig.pm.prefetches_issued.value(), 0u)
      << "the frontier block is not mapped yet: nothing to traverse";
}

TEST(ProgramMap, WrongPathBlocksNeverEnterTheMap) {
  ProgramMapRig rig;
  rig.push_partial(0x1000, 8, 4);  // wrong-path suffix: not retired
  rig.push_block(0x8000);
  rig.push_wrong(0xF000);          // fully wrong successor
  rig.mem.tick(0);
  rig.pm.tick(0);
  EXPECT_EQ(rig.pm.recorded_edges(0x1000), 0u)
      << "a block with a wrong-path suffix must not be recorded";
  EXPECT_EQ(rig.pm.recorded_edges(0x8000), 0u)
      << "an edge into a fully wrong block must not be recorded";
  EXPECT_EQ(rig.pm.nodes_recorded.value(), 0u);
}

TEST(ProgramMap, TraversalPrestagesTheSuccessorChain) {
  ProgramMapRig rig;
  rig.push_block(0x1000, 8);
  rig.push_block(0x8000, 32);  // 128 bytes: spans 2 lines
  rig.push_block(0xA000, 8);
  rig.mem.tick(0);
  rig.pm.tick(0);  // records 0x1000 -> 0x8000 and 0x8000 -> 0xA000

  rig.push_block(0x1000, 8);  // frontier returns to the mapped node
  rig.run_cycles(1, 60);
  EXPECT_GE(rig.pm.traversals.value(), 1u);
  EXPECT_TRUE(rig.pm.probe(0x8000).present);
  EXPECT_TRUE(rig.pm.probe(0x8040).present)
      << "the successor block's whole span is prestaged";
  EXPECT_TRUE(rig.pm.probe(0xA000).present)
      << "the walk continues to the successor's successor";
}

TEST(ProgramMap, RepeatedEdgesStrengthenInsteadOfDuplicating) {
  ProgramMapRig rig;
  rig.push_block(0x1000);
  rig.push_block(0x8000);
  rig.mem.tick(0);
  rig.pm.tick(0);
  rig.ftq.flush();
  rig.push_block(0x1000);
  rig.push_block(0x8000);
  rig.mem.tick(1);
  rig.pm.tick(1);
  EXPECT_EQ(rig.pm.recorded_edges(0x1000), 1u) << "same edge, one slot";
  EXPECT_EQ(rig.pm.edges_strengthened.value(), 1u);
}

TEST(ProgramMap, TraversalFollowsTheHighestConfidenceEdge) {
  ProgramMapRig rig;
  const auto observe = [&rig](Addr from, Addr to, Cycle now) {
    rig.ftq.flush();
    rig.push_block(from);
    rig.push_block(to);
    rig.mem.tick(now);
    rig.pm.tick(now);
  };
  observe(0x1000, 0x8000, 0);  // A -> B, confidence 1
  observe(0x1000, 0x9000, 1);  // A -> C, confidence 1
  observe(0x1000, 0x8000, 2);  // A -> B, confidence 2
  EXPECT_EQ(rig.pm.recorded_edges(0x1000), 2u);

  rig.ftq.flush();
  rig.push_block(0x1000);  // frontier at the mapped node
  rig.run_cycles(3, 60);
  EXPECT_TRUE(rig.pm.probe(0x8000).present)
      << "the stronger successor is the one walked";
  EXPECT_FALSE(rig.pm.probe(0x9000).present);
  EXPECT_EQ(rig.pm.prefetches_issued.value(), 1u);
}

TEST(ProgramMap, BackwardEdgesAreClassified) {
  ProgramMapRig rig;
  rig.push_block(0x8000);
  rig.push_block(0x1000);  // return/loop: target below the source
  rig.mem.tick(0);
  rig.pm.tick(0);
  EXPECT_EQ(rig.pm.recorded_edges(0x8000), 1u);
  EXPECT_EQ(rig.pm.backward_edges.value(), 1u);
}

TEST(ProgramMap, RecoveryResetsTheFrontierButKeepsTheMap) {
  ProgramMapRig rig;
  rig.push_block(0x1000);
  rig.push_block(0x8000);
  rig.mem.tick(0);
  rig.pm.tick(0);
  rig.ftq.flush();  // the CPU flushes the FTQ on recovery
  rig.pm.on_recovery(1);
  EXPECT_EQ(rig.pm.recorded_edges(0x1000), 1u)
      << "the map records retired control flow and survives recovery";

  rig.push_block(0x1000);
  rig.run_cycles(1, 60);
  EXPECT_EQ(rig.pm.traversals.value(), 1u);
  EXPECT_TRUE(rig.pm.probe(0x8000).present);
}

TEST(ProgramMap, ConsumePromotesAndFrees) {
  ProgramMapRig rig;
  rig.push_block(0x1000);
  rig.push_block(0x8000);
  rig.mem.tick(0);
  rig.pm.tick(0);
  rig.push_block(0x1000);
  rig.run_cycles(1, 60);
  ASSERT_TRUE(rig.pm.probe(0x8000).present);
  rig.pm.on_fetch_from_pb(0x8000, 61);
  EXPECT_FALSE(rig.pm.probe(0x8000).present);
  EXPECT_TRUE(rig.caches.probe_l1(0x8000));
}

// --- registry ---------------------------------------------------------------

TEST(Registry, EveryBuiltinSchemeIsRegistered) {
  auto& registry = PrefetcherRegistry::instance();
  for (const char* name : {"base", "fdp", "clgp", "next-line", "stream",
                           "mana", "program-map"}) {
    const PrefetcherInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->label.empty());
    EXPECT_TRUE(static_cast<bool>(info->build));
  }
  EXPECT_EQ(registry.find("frobnicate"), nullptr);
}

TEST(Registry, BuildsEveryRegisteredSchemeFromAMachineConfig) {
  auto caches = FdpRig::make_caches(false);
  auto mem = FdpRig::make_mem();
  for (const std::string& name : PrefetcherRegistry::instance().names()) {
    cpu::MachineConfig cfg;
    cfg.prefetcher = name;
    const cpu::DerivedTimings timings = cpu::DerivedTimings::from(cfg);
    PrefetcherBuild b = build_prefetcher(
        {.config = cfg, .timings = timings, .caches = caches, .mem = mem});
    ASSERT_NE(b.queue, nullptr) << name;
    ASSERT_NE(b.prefetcher, nullptr) << name;
    // Contract smoke: a fresh prefetcher stages nothing and survives its
    // whole interface.
    EXPECT_FALSE(b.prefetcher->probe(0x1000).present) << name;
    b.prefetcher->tick(0);
    b.prefetcher->on_recovery(1);
    EXPECT_EQ(b.prefetcher->prefetches(), 0u) << name;
  }
}

TEST(Registry, UnknownNameThrowsNamingTheRegisteredSchemes) {
  auto caches = FdpRig::make_caches(false);
  auto mem = FdpRig::make_mem();
  cpu::MachineConfig cfg;
  cfg.prefetcher = "no-such-scheme";
  const cpu::DerivedTimings timings = cpu::DerivedTimings::from(cfg);
  try {
    (void)build_prefetcher(
        {.config = cfg, .timings = timings, .caches = caches, .mem = mem});
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scheme"), std::string::npos) << what;
    for (const char* name : {"base", "fdp", "clgp", "next-line", "stream",
                             "mana", "program-map"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(Registry, OutOfTreeRegistrationIsOpen) {
  // The whole point of the registry: a scheme can be added without
  // touching the cpu/sim/cli layers. Register one and build it.
  auto& registry = PrefetcherRegistry::instance();
  if (registry.find("test-null") == nullptr) {
    registry.add({.name = "test-null",
                  .label = "TestNull",
                  .description = "test-only scheme",
                  .build = [](const BuildInputs& in) {
                    PrefetcherBuild b;
                    b.queue = std::make_unique<frontend::FetchTargetQueue>(
                        in.config.queue_blocks, in.config.line_bytes);
                    b.prefetcher = std::make_unique<NonePrefetcher>();
                    return b;
                  }});
  }
  auto caches = FdpRig::make_caches(false);
  auto mem = FdpRig::make_mem();
  cpu::MachineConfig cfg;
  cfg.prefetcher = "test-null";
  const cpu::DerivedTimings timings = cpu::DerivedTimings::from(cfg);
  PrefetcherBuild b = build_prefetcher(
      {.config = cfg, .timings = timings, .caches = caches, .mem = mem});
  EXPECT_NE(b.prefetcher, nullptr);
}

TEST(Registry, DuplicateRegistrationIsAHardError) {
  // Last-wins would let a typo'd registration silently shadow a real
  // scheme; a colliding name must fail loudly, naming the collision.
  auto& registry = PrefetcherRegistry::instance();
  const auto info = [] {
    PrefetcherInfo i;
    i.name = "dup-probe";
    i.label = "DupProbe";
    i.description = "duplicate-registration regression probe";
    i.build = [](const BuildInputs& in) {
      PrefetcherBuild b;
      b.queue = std::make_unique<frontend::FetchTargetQueue>(
          in.config.queue_blocks, in.config.line_bytes);
      b.prefetcher = std::make_unique<NonePrefetcher>();
      return b;
    };
    return i;
  }();
  if (registry.find("dup-probe") == nullptr) registry.add(info);
  try {
    registry.add(info);
    FAIL() << "expected SimError on duplicate registration";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("dup-probe"), std::string::npos)
        << e.what();
  }
  EXPECT_NE(registry.find("dup-probe"), nullptr)
      << "the original registration survives the rejected duplicate";
}

TEST(Registry, StorageBudgetsAreAccountedPerScheme) {
  // Every real prefetcher carries CACTI-backed storage accounting; the
  // no-prefetcher baseline is storage-free by definition.
  for (const char* name : {"fdp", "clgp", "next-line", "stream", "mana",
                           "program-map"}) {
    cpu::MachineConfig cfg;
    cfg.prefetcher = name;
    EXPECT_GT(probe_storage_bits(cfg), 0u) << name;
  }
  cpu::MachineConfig base;
  base.prefetcher = "base";
  EXPECT_EQ(probe_storage_bits(base), 0u);
}

}  // namespace
}  // namespace prestage::prefetch
