// Unit tests for the baseline prefetchers: FDP (paper §3.1) and
// next-N-line (§2.1), plus the NonePrefetcher contract.
#include <gtest/gtest.h>

#include "frontend/fetch_queue.hpp"
#include "mem/ifetch_caches.hpp"
#include "mem/memsys.hpp"
#include "prefetch/fdp.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/prefetcher.hpp"

namespace prestage::prefetch {
namespace {

struct FdpRig {
  frontend::FetchTargetQueue ftq{8, 64};
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  FdpPrefetcher fdp;

  explicit FdpRig(const FdpConfig& cfg = {}, bool with_l0 = false)
      : caches(make_caches(with_l0)), mem(make_mem()), fdp(cfg, ftq, caches, mem) {}

  static mem::IFetchCaches make_caches(bool l0) {
    mem::IFetchCachesConfig c;
    c.l1_size_bytes = 4096;
    c.l1_latency = 4;
    c.has_l0 = l0;
    return mem::IFetchCaches(c);
  }
  static mem::MemSystem make_mem() {
    mem::MemSystemConfig c;
    c.l2_latency = 10;
    c.mem_latency = 50;
    return mem::MemSystem(c);
  }

  void push_block(Addr start, std::uint32_t len = 8) {
    frontend::FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 0;
    b.wrong_from = len;
    ftq.push_block(b);
  }

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      fdp.tick(t);
    }
  }
};

TEST(Fdp, PrefetchesFtqLinesIntoBuffer) {
  FdpRig rig;
  rig.mem.l2().insert(0x1000);  // L2-resident: fill at L2 latency
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetches_issued.value(), 1u);
  EXPECT_EQ(rig.fdp.prefetch_sources().count(FetchSource::L2), 1u);
}

TEST(Fdp, EnqueueCacheProbeFilteringSkipsResidentLines) {
  // Paper §3.1: the configuration compared in the results uses Enqueue
  // Cache Probe Filtering against the I-cache tags.
  FdpRig rig;
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetches_issued.value(), 0u);
  EXPECT_EQ(rig.fdp.requests_filtered.value(), 1u);
}

TEST(Fdp, WithL0FiltersOnlyAgainstL0AndPrefetchesFromL1) {
  // Paper §3.1.1: with an L0, prefetches are served by the L1 so its
  // multi-cycle hit latency stops hurting the fetch stage.
  FdpConfig cfg;
  FdpRig rig(cfg, /*with_l0=*/true);
  rig.caches.l1().insert(0x1000);  // in L1 but not L0
  rig.push_block(0x1000);
  rig.run_cycles(0, 20);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_EQ(rig.fdp.prefetch_sources().count(FetchSource::L1), 1u);
}

TEST(Fdp, ConsumedLinePromotesAndFrees) {
  // Paper §3.1: "when a line from the prefetch buffer is used... it is
  // transferred to the I-cache and the entry is marked as available".
  FdpRig rig;
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 30);
  ASSERT_TRUE(rig.fdp.probe(0x1000).present);
  rig.fdp.on_fetch_from_pb(0x1000, 31);
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);  // entry freed
  EXPECT_TRUE(rig.caches.probe_l1(0x1000));     // moved into L1
}

TEST(Fdp, PromotionTargetsL0WhenPresent) {
  FdpRig rig({}, /*with_l0=*/true);
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.run_cycles(0, 30);
  rig.fdp.on_fetch_from_pb(0x1000, 31);
  EXPECT_TRUE(rig.caches.probe_l0(0x1000));
  EXPECT_FALSE(rig.caches.probe_l1(0x1000));  // not replicated into L1
}

TEST(Fdp, ConsumeWhileInFlightPromotesOnFill) {
  FdpRig rig;
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000);
  rig.mem.tick(0);
  rig.fdp.tick(0);  // request in flight
  ASSERT_TRUE(rig.fdp.probe(0x1000).present);
  rig.fdp.on_fetch_from_pb(0x1000, 1);  // fetch wants it already
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.caches.probe_l1(0x1000));
  EXPECT_FALSE(rig.fdp.probe(0x1000).present);
}

TEST(Fdp, BufferFullStallsScan) {
  FdpConfig cfg;
  cfg.entries = 2;
  FdpRig rig(cfg);
  rig.push_block(0x1000);
  rig.push_block(0x2000);
  rig.push_block(0x3000);
  rig.run_cycles(0, 5);  // fills in flight: entries not reclaimable
  EXPECT_FALSE(rig.fdp.probe(0x3000).present);
  EXPECT_GT(rig.fdp.pb_occupancy_stalls.value(), 0u);
}

TEST(Fdp, LruFallbackReclaimsArrivedUnusedEntries) {
  // Wrong-path leftovers must not wedge the buffer (DESIGN.md deviation).
  FdpConfig cfg;
  cfg.entries = 2;
  FdpRig rig(cfg);
  rig.mem.l2().insert(0x1000);
  rig.mem.l2().insert(0x2000);
  rig.push_block(0x1000);
  rig.push_block(0x2000);
  rig.run_cycles(0, 30);  // both arrived, neither consumed
  rig.push_block(0x3000);
  rig.run_cycles(31, 99);
  EXPECT_TRUE(rig.fdp.probe(0x3000).present);  // reclaimed an LRU entry
}

TEST(Fdp, ScanCoversMultipleBlocksInOrder) {
  FdpRig rig;
  rig.push_block(0x1000, 32);  // 2 lines
  rig.push_block(0x4000, 8);   // 1 line
  rig.run_cycles(0, 40);
  EXPECT_TRUE(rig.fdp.probe(0x1000).present);
  EXPECT_TRUE(rig.fdp.probe(0x1040).present);
  EXPECT_TRUE(rig.fdp.probe(0x4000).present);
}

TEST(NonePrefetcher, NeverPresent) {
  NonePrefetcher none;
  EXPECT_FALSE(none.probe(0x1000).present);
  EXPECT_EQ(none.pb_port(), nullptr);
  EXPECT_EQ(none.prefetches(), 0u);
}

struct NlRig {
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  NextLinePrefetcher nl;

  explicit NlRig(const NextLineConfig& cfg = {})
      : caches(FdpRig::make_caches(false)),
        mem(FdpRig::make_mem()),
        nl(cfg, caches, mem) {}

  void run_cycles(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      mem.tick(t);
      nl.tick(t);
    }
  }
};

TEST(NextLine, PrefetchesSequentialSuccessors) {
  NextLineConfig cfg;
  cfg.degree = 2;
  NlRig rig(cfg);
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  EXPECT_TRUE(rig.nl.probe(0x1040).present);
  EXPECT_TRUE(rig.nl.probe(0x1080).present);
  EXPECT_FALSE(rig.nl.probe(0x10C0).present);  // degree 2 only
}

TEST(NextLine, SkipsResidentLines) {
  NlRig rig;
  rig.caches.fill_demand(0x1040);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  EXPECT_FALSE(rig.nl.probe(0x1040).present);  // already in L1
  EXPECT_TRUE(rig.nl.probe(0x1080).present);
}

TEST(NextLine, ConsumePromotesAndFrees) {
  NlRig rig;
  rig.mem.l2().insert(0x1040);
  rig.mem.l2().insert(0x1080);
  rig.mem.tick(0);
  rig.nl.on_line_request(0x1000, 0);
  rig.run_cycles(1, 30);
  rig.nl.on_fetch_from_pb(0x1040, 31);
  EXPECT_FALSE(rig.nl.probe(0x1040).present);
  EXPECT_TRUE(rig.caches.probe_l1(0x1040));
}

}  // namespace
}  // namespace prestage::prefetch
