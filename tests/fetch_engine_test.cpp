// Unit tests for the fetch engine's timing discipline: parallel probing,
// streaming vs blocking overlap, demand misses and flush semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/clgp.hpp"
#include "frontend/fetch_engine.hpp"
#include "frontend/fetch_queue.hpp"
#include "mem/ifetch_caches.hpp"
#include "mem/memsys.hpp"
#include "prefetch/prefetcher.hpp"

namespace prestage::frontend {
namespace {

/// Records every delivered instruction with its arrival cycle.
struct RecordingSink final : IFetchSink {
  struct Got {
    FetchedInst inst;
    Cycle at;
  };
  std::vector<Got> got;
  Cycle now = 0;
  bool open = true;

  [[nodiscard]] bool can_accept() const override { return open; }
  void accept(const FetchedInst& inst) override {
    got.push_back({inst, now});
  }
};

struct Rig {
  FetchTargetQueue ftq{8, 64};
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  prefetch::NonePrefetcher none;
  FetchEngine engine;
  RecordingSink sink;

  explicit Rig(int l1_latency = 4, bool pipelined = false,
               bool with_l0 = false)
      : caches(make_caches(l1_latency, pipelined, with_l0)),
        mem(make_mem()),
        engine(FetchEngineConfig{}, ftq, caches, mem, none) {}

  static mem::IFetchCaches make_caches(int lat, bool pipe, bool l0) {
    mem::IFetchCachesConfig c;
    c.l1_size_bytes = 4096;
    c.l1_latency = lat;
    c.l1_pipelined = pipe;
    c.has_l0 = l0;
    return mem::IFetchCaches(c);
  }
  static mem::MemSystem make_mem() {
    mem::MemSystemConfig c;
    c.l2_latency = 10;
    c.mem_latency = 50;
    return mem::MemSystem(c);
  }

  void push_block(Addr start, std::uint32_t len) {
    FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 1000;
    b.wrong_from = len;
    ftq.push_block(b);
  }

  void run(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      sink.now = t;
      mem.tick(t);
      engine.tick(t, sink);
    }
  }
};

TEST(FetchEngine, L1HitDeliversAfterLatency) {
  Rig rig(/*l1_latency=*/4);
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000, 8);
  rig.run(0, 10);
  ASSERT_EQ(rig.sink.got.size(), 8u);
  // Initiated at cycle 0, ready at 4: first instructions arrive then.
  EXPECT_EQ(rig.sink.got.front().at, 4u);
  EXPECT_EQ(rig.sink.got.front().inst.pc, 0x1000u);
  EXPECT_EQ(rig.sink.got.front().inst.oracle_seq, 1000u);
  EXPECT_EQ(rig.sink.got.front().inst.source, FetchSource::L1);
  // Four-wide delivery: 8 instructions over two cycles.
  EXPECT_EQ(rig.sink.got.back().at, 5u);
}

TEST(FetchEngine, BlockingL1SerialisesConsecutiveLines) {
  Rig rig(/*l1_latency=*/4, /*pipelined=*/false);
  rig.caches.fill_demand(0x1000);
  rig.caches.fill_demand(0x1040);
  rig.push_block(0x1000, 32);  // two full lines
  rig.run(0, 30);
  ASSERT_EQ(rig.sink.got.size(), 32u);
  // Line 0: access 0..4, delivery cycles 4..7. The next blocking access
  // starts the cycle the buffer drains (initiate runs after deliver):
  // issues at 7, ready at 11 — 3 dead cycles vs the pipelined case.
  EXPECT_EQ(rig.sink.got[16].at, 11u);
}

TEST(FetchEngine, PipelinedL1OverlapsConsecutiveLines) {
  Rig rig(/*l1_latency=*/4, /*pipelined=*/true);
  rig.caches.fill_demand(0x1000);
  rig.caches.fill_demand(0x1040);
  rig.push_block(0x1000, 32);
  rig.run(0, 30);
  ASSERT_EQ(rig.sink.got.size(), 32u);
  // Second access issues at cycle 1, ready at 5; line 0 drains at 7, so
  // line 1 starts delivering at 8 — gapless.
  EXPECT_EQ(rig.sink.got[16].at, 8u);
  EXPECT_EQ(rig.sink.got[31].at, 11u);
}

TEST(FetchEngine, L0HitIsOneCycleAndStreams) {
  Rig rig(/*l1_latency=*/4, /*pipelined=*/false, /*with_l0=*/true);
  rig.caches.fill_demand(0x1000);  // fills L1 + L0
  rig.push_block(0x1000, 8);
  rig.run(0, 10);
  ASSERT_EQ(rig.sink.got.size(), 8u);
  EXPECT_EQ(rig.sink.got.front().at, 1u);
  EXPECT_EQ(rig.sink.got.front().inst.source, FetchSource::L0);
}

TEST(FetchEngine, DemandMissGoesToL2AndFillsEmergencyPath) {
  Rig rig(4, false, /*with_l0=*/true);
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000, 4);
  rig.run(0, 20);
  ASSERT_EQ(rig.sink.got.size(), 4u);
  EXPECT_EQ(rig.sink.got.front().inst.source, FetchSource::L2);
  // Granted at cycle 1, L2 latency 10 -> ready 11.
  EXPECT_EQ(rig.sink.got.front().at, 11u);
  EXPECT_TRUE(rig.caches.probe_l1(0x1000));
  EXPECT_TRUE(rig.caches.probe_l0(0x1000));
}

TEST(FetchEngine, L1HitRefillsTheFilterL0) {
  Rig rig(4, false, /*with_l0=*/true);
  rig.caches.l1().insert(0x1000);  // L1-only
  rig.push_block(0x1000, 4);
  rig.run(0, 10);
  EXPECT_TRUE(rig.caches.probe_l0(0x1000));
}

TEST(FetchEngine, SinkBackpressureStallsDelivery) {
  Rig rig(4);
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000, 8);
  rig.sink.open = false;
  rig.run(0, 10);
  EXPECT_TRUE(rig.sink.got.empty());
  rig.sink.open = true;
  rig.run(11, 20);
  EXPECT_EQ(rig.sink.got.size(), 8u);
}

TEST(FetchEngine, FlushSquashesPendingAndBuffered) {
  Rig rig(4);
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000, 16);
  rig.run(0, 2);  // access in flight, nothing delivered yet
  rig.ftq.flush();
  rig.engine.flush();
  rig.run(3, 20);
  EXPECT_TRUE(rig.sink.got.empty());
  EXPECT_TRUE(rig.engine.idle());
}

TEST(FetchEngine, SquashedDemandMissStillFillsCaches) {
  // The SRAM write happens regardless of the squash; only the waking of
  // the dead fetch is suppressed.
  Rig rig(4);
  rig.mem.l2().insert(0x2000);
  rig.push_block(0x2000, 4);
  rig.run(0, 2);
  rig.ftq.flush();
  rig.engine.flush();
  rig.run(3, 30);
  EXPECT_TRUE(rig.sink.got.empty());
  EXPECT_TRUE(rig.caches.probe_l1(0x2000));
}

TEST(FetchEngine, FetchSourceAccountingPerLine) {
  Rig rig(4);
  rig.caches.fill_demand(0x1000);
  rig.mem.l2().insert(0x2000);
  rig.push_block(0x1000, 8);   // L1 hit
  rig.push_block(0x2000, 8);   // L2 miss
  rig.run(0, 40);
  EXPECT_EQ(rig.engine.fetch_sources.count(FetchSource::L1), 1u);
  EXPECT_EQ(rig.engine.fetch_sources.count(FetchSource::L2), 1u);
  EXPECT_EQ(rig.engine.lines_fetched.value(), 2u);
  EXPECT_EQ(rig.engine.instrs_delivered.value(), 16u);
}

TEST(FetchEngine, WrongPathFlagsPropagateToDeliveredInstructions) {
  Rig rig(4);
  rig.caches.fill_demand(0x1000);
  FetchBlock b;
  b.start = 0x1000;
  b.length = 8;
  b.oracle_base_seq = 500;
  b.wrong_from = 5;
  b.culprit_index = 4;
  rig.ftq.push_block(b);
  rig.run(0, 10);
  ASSERT_EQ(rig.sink.got.size(), 8u);
  EXPECT_FALSE(rig.sink.got[3].inst.wrong_path);
  EXPECT_TRUE(rig.sink.got[4].inst.culprit);
  EXPECT_FALSE(rig.sink.got[4].inst.wrong_path);  // culprit is correct path
  EXPECT_TRUE(rig.sink.got[5].inst.wrong_path);
  EXPECT_EQ(rig.sink.got[5].inst.oracle_seq, kNoSeq);
}

// CLGP-backed engine: prestage-buffer hits and in-flight waits.
struct ClgpEngineRig {
  CacheLineTargetQueue cltq{8, 64};
  mem::IFetchCaches caches;
  mem::MemSystem mem;
  core::ClgpPrestager clgp;
  FetchEngine engine;
  RecordingSink sink;

  ClgpEngineRig()
      : caches(Rig::make_caches(4, false, false)),
        mem(Rig::make_mem()),
        clgp(core::ClgpConfig{}, cltq, caches, mem),
        engine(FetchEngineConfig{}, cltq, caches, mem, clgp) {}

  void push_block(Addr start, std::uint32_t len) {
    FetchBlock b;
    b.start = start;
    b.length = len;
    b.oracle_base_seq = 0;
    b.wrong_from = len;
    cltq.push_block(b);
  }

  void run(Cycle from, Cycle to) {
    for (Cycle t = from; t <= to; ++t) {
      sink.now = t;
      mem.tick(t);
      engine.tick(t, sink);
      clgp.tick(t);
    }
  }
};

TEST(FetchEngine, PrestageHitServesAtBufferLatency) {
  ClgpEngineRig rig;
  rig.caches.fill_demand(0x1000);
  rig.push_block(0x1000, 8);
  // Let the scan stage the line first (fetch races it; give it a cycle).
  rig.mem.tick(0);
  rig.clgp.tick(0);
  rig.run(1, 20);
  ASSERT_EQ(rig.sink.got.size(), 8u);
  EXPECT_EQ(rig.sink.got.front().inst.source, FetchSource::PreBuffer);
  // Transfer from L1 completes at ~4; PB read adds one cycle.
  EXPECT_LE(rig.sink.got.front().at, 6u);
}

TEST(FetchEngine, WaitsOnInFlightPrestageFill) {
  ClgpEngineRig rig;
  rig.mem.l2().insert(0x1000);
  rig.push_block(0x1000, 4);
  rig.mem.tick(0);
  rig.clgp.tick(0);  // prefetch to L2 in flight, arrival unknown
  rig.run(1, 30);
  ASSERT_EQ(rig.sink.got.size(), 4u);
  EXPECT_EQ(rig.sink.got.front().inst.source, FetchSource::PreBuffer);
  // L2 fill granted ~1, ready ~11, PB read +1 => ~12.
  EXPECT_GE(rig.sink.got.front().at, 11u);
  EXPECT_LE(rig.sink.got.front().at, 14u);
}

}  // namespace
}  // namespace prestage::frontend
