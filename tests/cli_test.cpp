// Smoke tests for the `prestage` CLI: spawns the real binary (path baked
// in via PRESTAGE_CLI_PATH) on a short instruction budget and validates
// the JSON reports with a minimal strict parser, so a malformed document
// or a missing field fails loudly in CI.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON parser ---------------------------------------------------
// Just enough of RFC 8259 to round-trip what json_writer.cpp emits:
// objects, arrays, strings with the writer's escapes, numbers, booleans
// and null. Any syntax error throws std::runtime_error.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- harness ---------------------------------------------------------------

std::string cli_path() { return PRESTAGE_CLI_PATH; }

/// Per-test-case file path: gtest_discover_tests registers each case as
/// its own ctest test, and `ctest -j` runs them concurrently against the
/// same TempDir, so fixed names would let tests clobber each other.
std::string test_file(const std::string& name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "/" + info->test_suite_name() + "." +
         info->name() + "." + name;
}

/// Runs `prestage <args>`, captures stdout+stderr, returns the exit code.
int run_cli(const std::string& args, std::string* output) {
  const std::string out_file = test_file("cli_out.txt");
  const std::string command =
      cli_path() + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream ss;
  ss << in.rdbuf();
  *output = ss.str();
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void check_breakdown(const JsonValue& sb) {
  for (const char* source : {"PB", "il0", "il1", "ul2", "Mem"}) {
    ASSERT_TRUE(sb.has(source)) << "missing source " << source;
    EXPECT_EQ(sb.at(source).kind, JsonValue::Kind::Number);
  }
}

TEST(CliSmoke, RunEmitsHeadlineStatsAndJson) {
  const std::string json_file = test_file("run.json");
  std::string output;
  const int rc = run_cli(
      "run --preset clgp-l0-pb16 --bench eon --instrs 2000 --json " +
          json_file,
      &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("IPC"), std::string::npos) << output;

  const JsonValue doc = JsonParser(read_file(json_file)).parse();
  EXPECT_EQ(doc.at("schema").string, "prestage-run-v1");
  EXPECT_EQ(doc.at("preset").string, "clgp-l0-pb16");
  EXPECT_EQ(doc.at("instructions").number, 2000.0);
  const JsonValue& result = doc.at("result");
  EXPECT_EQ(result.at("benchmark").string, "eon");
  EXPECT_GT(result.at("ipc").number, 0.0);
  EXPECT_GE(result.at("instructions").number, 2000.0);
  check_breakdown(result.at("fetch_sources"));
  check_breakdown(result.at("prefetch_sources"));
}

TEST(CliSmoke, SuiteJsonCoversAllBenchmarksWithHmean) {
  const std::string json_file = test_file("suite.json");
  std::string output;
  const int rc = run_cli(
      "suite --preset clgp-l0-pb16 --instrs 1500 --json " + json_file,
      &output);
  ASSERT_EQ(rc, 0) << output;

  const JsonValue doc = JsonParser(read_file(json_file)).parse();
  EXPECT_EQ(doc.at("schema").string, "prestage-suite-v1");
  const JsonValue& benchmarks = doc.at("benchmarks");
  ASSERT_EQ(benchmarks.kind, JsonValue::Kind::Array);
  ASSERT_EQ(benchmarks.array.size(), 12u) << "full suite expected";
  for (const JsonValue& r : benchmarks.array) {
    EXPECT_FALSE(r.at("benchmark").string.empty());
    EXPECT_GT(r.at("ipc").number, 0.0) << r.at("benchmark").string;
    check_breakdown(r.at("fetch_sources"));
  }
  EXPECT_GT(doc.at("hmean_ipc").number, 0.0);
  // The HMEAN must sit within the per-benchmark range.
  double min_ipc = 1e9, max_ipc = 0.0;
  for (const JsonValue& r : benchmarks.array) {
    min_ipc = std::min(min_ipc, r.at("ipc").number);
    max_ipc = std::max(max_ipc, r.at("ipc").number);
  }
  EXPECT_GE(doc.at("hmean_ipc").number, min_ipc);
  EXPECT_LE(doc.at("hmean_ipc").number, max_ipc);
}

TEST(CliSmoke, SweepJsonHasOnePointPerSize) {
  std::string output;
  const int rc = run_cli(
      "sweep --preset base --bench eon --sizes 1K,4K --instrs 1000 "
      "--json -",
      &output);
  ASSERT_EQ(rc, 0) << output;

  // With --json - the document owns stdout: the human chart is
  // suppressed, so the whole capture must parse as one JSON value.
  const JsonValue doc = JsonParser(output).parse();
  EXPECT_EQ(doc.at("schema").string, "prestage-sweep-v1");
  const JsonValue& points = doc.at("points");
  ASSERT_EQ(points.array.size(), 2u);
  EXPECT_EQ(points.array[0].at("l1i_size").number, 1024.0);
  EXPECT_EQ(points.array[1].at("l1i_size").number, 4096.0);
  for (const JsonValue& p : points.array) {
    EXPECT_GT(p.at("hmean_ipc").number, 0.0);
  }
}

TEST(CliSmoke, ListNamesEveryPreset) {
  std::string output;
  const int rc = run_cli("list", &output);
  ASSERT_EQ(rc, 0) << output;
  for (const char* name :
       {"base", "base-ideal", "base-l0", "base-pipelined", "fdp", "fdp-l0",
        "fdp-l0-pb16", "clgp", "clgp-l0", "clgp-l0-pb16"}) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
}

TEST(CliSmoke, BadInputFailsWithUsage) {
  std::string output;
  EXPECT_NE(run_cli("frobnicate", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);

  EXPECT_NE(run_cli("run --preset no-such-preset", &output), 0);
  EXPECT_NE(output.find("unknown preset"), std::string::npos);

  EXPECT_NE(run_cli("run --bench no-such-benchmark", &output), 0);
  EXPECT_NE(output.find("unknown benchmark"), std::string::npos);
}

// --- trace subcommands ------------------------------------------------------

std::string fixture_path() {
  return std::string(PRESTAGE_TEST_DATA_DIR) + "/fixture.champsim.trace";
}

TEST(CliTrace, RecordThenReplayReportsIdenticalStats) {
  const std::string trace_file_path = test_file("roundtrip.pstr");
  const std::string record_json = test_file("record.json");
  const std::string replay_json = test_file("replay.json");
  std::string output;

  int rc = run_cli("trace record --preset clgp-l0-pb16 --bench eon "
                   "--instrs 3000 --out " + trace_file_path + " --json " +
                       record_json,
                   &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("wrote"), std::string::npos) << output;

  rc = run_cli("trace replay --preset clgp-l0-pb16 --instrs 3000 --trace " +
                   trace_file_path + " --json " + replay_json,
               &output);
  ASSERT_EQ(rc, 0) << output;

  const JsonValue rec = JsonParser(read_file(record_json)).parse();
  const JsonValue rep = JsonParser(read_file(replay_json)).parse();
  EXPECT_EQ(rec.at("schema").string, "prestage-trace-record-v1");
  EXPECT_EQ(rep.at("schema").string, "prestage-trace-replay-v1");
  EXPECT_EQ(rec.at("trace").at("format").string, "native");
  EXPECT_EQ(rep.at("trace").at("format").string, "native");
  EXPECT_GT(rec.at("trace").at("records").number, 3000.0);

  // Bit-identical replay: IPC, cycles and every fetch-source count match.
  const JsonValue& a = rec.at("result");
  const JsonValue& b = rep.at("result");
  EXPECT_EQ(a.at("ipc").number, b.at("ipc").number);
  EXPECT_EQ(a.at("cycles").number, b.at("cycles").number);
  check_breakdown(a.at("fetch_sources"));
  for (const char* source : {"PB", "il0", "il1", "ul2", "Mem"}) {
    EXPECT_EQ(a.at("fetch_sources").at(source).number,
              b.at("fetch_sources").at(source).number)
        << source;
  }
}

TEST(CliTrace, InfoDescribesANativeTrace) {
  const std::string trace_file_path = test_file("info.pstr");
  std::string output;
  ASSERT_EQ(run_cli("trace record --bench gzip --instrs 1000 --out " +
                        trace_file_path,
                    &output),
            0)
      << output;

  ASSERT_EQ(run_cli("trace info --trace " + trace_file_path + " --json -",
                    &output),
            0)
      << output;
  const JsonValue doc = JsonParser(output).parse();
  EXPECT_EQ(doc.at("schema").string, "prestage-trace-info-v1");
  EXPECT_EQ(doc.at("format").string, "native");
  EXPECT_EQ(doc.at("version").number, 1.0);
  EXPECT_EQ(doc.at("benchmark").string, "gzip");
  EXPECT_GT(doc.at("records").number, 1000.0);
  EXPECT_GT(doc.at("streams").number, 0.0);
}

TEST(CliTrace, ChampSimFixtureReplaysAndDescribes) {
  std::string output;
  ASSERT_EQ(run_cli("trace info --trace " + fixture_path() + " --json -",
                    &output),
            0)
      << output;
  const JsonValue info = JsonParser(output).parse();
  EXPECT_EQ(info.at("format").string, "champsim");
  EXPECT_EQ(info.at("records").number, 182.0);
  EXPECT_EQ(info.at("unique_pcs").number, 10.0);

  ASSERT_EQ(run_cli("trace replay --preset clgp --instrs 1500 --trace " +
                        fixture_path() + " --json -",
                    &output),
            0)
      << output;
  const JsonValue doc = JsonParser(output).parse();
  EXPECT_EQ(doc.at("schema").string, "prestage-trace-replay-v1");
  EXPECT_EQ(doc.at("trace").at("format").string, "champsim");
  EXPECT_GT(doc.at("result").at("ipc").number, 0.0);
  check_breakdown(doc.at("result").at("fetch_sources"));
}

TEST(CliTrace, ErrorPathsFailLoudly) {
  std::string output;
  // Missing subcommand / unknown subcommand.
  EXPECT_EQ(run_cli("trace", &output), 2);
  EXPECT_NE(output.find("subcommand"), std::string::npos);
  EXPECT_EQ(run_cli("trace frobnicate", &output), 2);

  // record needs --out; replay/info need --trace.
  EXPECT_EQ(run_cli("trace record --bench eon --instrs 100", &output), 2);
  EXPECT_NE(output.find("--out"), std::string::npos);
  EXPECT_EQ(run_cli("trace replay", &output), 2);
  EXPECT_NE(output.find("--trace"), std::string::npos);
  EXPECT_EQ(run_cli("trace info", &output), 2);

  // Missing file.
  EXPECT_EQ(run_cli("trace replay --trace " + test_file("gone.pstr"),
                    &output),
            1);
  EXPECT_NE(output.find("cannot open"), std::string::npos) << output;

  // Bad magic (not a multiple of the ChampSim record size either).
  const std::string bad_magic = test_file("bad_magic.pstr");
  { std::ofstream(bad_magic) << "this is not a trace"; }
  EXPECT_EQ(run_cli("trace replay --trace " + bad_magic, &output), 1);
  EXPECT_NE(output.find("unrecognized format"), std::string::npos)
      << output;
  EXPECT_EQ(run_cli("trace info --format native --trace " + bad_magic,
                    &output),
            1);
  EXPECT_NE(output.find("bad magic"), std::string::npos) << output;

  // Unsupported version.
  const std::string bad_version = test_file("bad_version.pstr");
  {
    std::ofstream out(bad_version, std::ios::binary);
    const char bytes[] = {'P', 'S', 'T', 'R', 9, 0, 0, 0};
    out.write(bytes, sizeof(bytes));
  }
  EXPECT_EQ(run_cli("trace info --trace " + bad_version, &output), 1);
  EXPECT_NE(output.find("unsupported trace version"), std::string::npos)
      << output;

  // Bad --format value is a usage error.
  EXPECT_EQ(run_cli("trace info --trace x --format tar", &output), 2);
  EXPECT_NE(output.find("--format"), std::string::npos);
}

}  // namespace
