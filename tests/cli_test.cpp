// Smoke tests for the `prestage` CLI: spawns the real binary (path baked
// in via PRESTAGE_CLI_PATH) on a short instruction budget and validates
// the JSON reports with the strict common/json.hpp parser, so a
// malformed document or a missing field fails loudly in CI.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using JsonValue = prestage::json::Value;

JsonValue parse_json(const std::string& text) {
  return prestage::json::parse(text);
}

// --- harness ---------------------------------------------------------------

std::string cli_path() { return PRESTAGE_CLI_PATH; }

/// Per-test-case file path: gtest_discover_tests registers each case as
/// its own ctest test, and `ctest -j` runs them concurrently against the
/// same TempDir, so fixed names would let tests clobber each other.
std::string test_file(const std::string& name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "/" + info->test_suite_name() + "." +
         info->name() + "." + name;
}

/// Runs `<env> prestage <args>` (env may carry VAR=value assignments for
/// the child only), captures stdout+stderr, returns the exit code.
int run_cli_env(const std::string& env, const std::string& args,
                std::string* output) {
  const std::string out_file = test_file("cli_out.txt");
  const std::string command = (env.empty() ? "" : env + " ") + cli_path() +
                              " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream ss;
  ss << in.rdbuf();
  *output = ss.str();
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Runs `prestage <args>`, captures stdout+stderr, returns the exit code.
int run_cli(const std::string& args, std::string* output) {
  return run_cli_env("", args, output);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void check_breakdown(const JsonValue& sb) {
  for (const char* source : {"PB", "il0", "il1", "ul2", "Mem"}) {
    ASSERT_TRUE(sb.has(source)) << "missing source " << source;
    EXPECT_EQ(sb.at(source).kind, JsonValue::Kind::Number);
  }
}

TEST(CliSmoke, RunEmitsHeadlineStatsAndJson) {
  const std::string json_file = test_file("run.json");
  std::string output;
  const int rc = run_cli(
      "run --preset clgp-l0-pb16 --bench eon --instrs 2000 --json " +
          json_file,
      &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("IPC"), std::string::npos) << output;

  const JsonValue doc = parse_json(read_file(json_file));
  EXPECT_EQ(doc.at("schema").string, "prestage-run-v1");
  EXPECT_EQ(doc.at("preset").string, "clgp-l0-pb16");
  EXPECT_EQ(doc.at("instructions").number, 2000.0);
  const JsonValue& result = doc.at("result");
  EXPECT_EQ(result.at("benchmark").string, "eon");
  EXPECT_GT(result.at("ipc").number, 0.0);
  EXPECT_GE(result.at("instructions").number, 2000.0);
  // Host-throughput telemetry: wall clock really elapsed, so both
  // fields must be strictly positive.
  EXPECT_GT(result.at("host_seconds").number, 0.0);
  EXPECT_GT(result.at("minstr_per_sec").number, 0.0);
  check_breakdown(result.at("fetch_sources"));
  check_breakdown(result.at("prefetch_sources"));
}

TEST(CliSmoke, SuiteJsonCoversAllBenchmarksWithHmean) {
  const std::string json_file = test_file("suite.json");
  std::string output;
  const int rc = run_cli(
      "suite --preset clgp-l0-pb16 --instrs 1500 --json " + json_file,
      &output);
  ASSERT_EQ(rc, 0) << output;

  const JsonValue doc = parse_json(read_file(json_file));
  EXPECT_EQ(doc.at("schema").string, "prestage-suite-v1");
  const JsonValue& benchmarks = doc.at("benchmarks");
  ASSERT_EQ(benchmarks.kind, JsonValue::Kind::Array);
  ASSERT_EQ(benchmarks.array.size(), 12u) << "full suite expected";
  for (const JsonValue& r : benchmarks.array) {
    EXPECT_FALSE(r.at("benchmark").string.empty());
    EXPECT_GT(r.at("ipc").number, 0.0) << r.at("benchmark").string;
    check_breakdown(r.at("fetch_sources"));
  }
  EXPECT_GT(doc.at("hmean_ipc").number, 0.0);
  // The HMEAN must sit within the per-benchmark range.
  double min_ipc = 1e9, max_ipc = 0.0;
  for (const JsonValue& r : benchmarks.array) {
    min_ipc = std::min(min_ipc, r.at("ipc").number);
    max_ipc = std::max(max_ipc, r.at("ipc").number);
  }
  EXPECT_GE(doc.at("hmean_ipc").number, min_ipc);
  EXPECT_LE(doc.at("hmean_ipc").number, max_ipc);
  // Aggregated host telemetry sums the per-benchmark worker time.
  const JsonValue& host = doc.at("host");
  EXPECT_GT(host.at("host_seconds").number, 0.0);
  EXPECT_GT(host.at("minstr_per_sec").number, 0.0);
  double summed = 0.0;
  for (const JsonValue& r : benchmarks.array) {
    summed += r.at("host_seconds").number;
  }
  // Relative tolerance: the values round-tripped through the writer's
  // %.10g, so the absolute error scales with the (host-dependent) sum.
  EXPECT_NEAR(host.at("host_seconds").number, summed,
              1e-9 + 1e-6 * summed);
}

TEST(CliSmoke, SweepJsonHasOnePointPerSize) {
  std::string output;
  const int rc = run_cli(
      "sweep --preset base --bench eon --sizes 1K,4K --instrs 1000 "
      "--json -",
      &output);
  ASSERT_EQ(rc, 0) << output;

  // With --json - the document owns stdout: the human chart is
  // suppressed, so the whole capture must parse as one JSON value.
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-sweep-v1");
  const JsonValue& points = doc.at("points");
  ASSERT_EQ(points.array.size(), 2u);
  EXPECT_EQ(points.array[0].at("l1i_size").number, 1024.0);
  EXPECT_EQ(points.array[1].at("l1i_size").number, 4096.0);
  for (const JsonValue& p : points.array) {
    EXPECT_GT(p.at("hmean_ipc").number, 0.0);
  }
}

TEST(CliSmoke, ListNamesEveryPresetAndPrefetcher) {
  std::string output;
  const int rc = run_cli("list", &output);
  ASSERT_EQ(rc, 0) << output;
  for (const char* name :
       {"base", "base-ideal", "base-l0", "base-pipelined", "fdp", "fdp-l0",
        "fdp-l0-pb16", "clgp", "clgp-l0", "clgp-l0-pb16", "next-line",
        "next-line-l0", "stream", "stream-l0"}) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
  EXPECT_NE(output.find("prefetchers"), std::string::npos) << output;
}

TEST(CliSmoke, StreamPresetRunsEndToEnd) {
  // The registry's proof-of-extension scheme, reached purely through
  // the composition grammar (no CLI/preset edits were needed to add it).
  const std::string json_file = test_file("stream.json");
  std::string output;
  const int rc = run_cli(
      "run --preset stream-l0 --bench eon --instrs 2000 --json " +
          json_file,
      &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue doc = parse_json(read_file(json_file));
  EXPECT_EQ(doc.at("preset").string, "stream-l0");
  EXPECT_GT(doc.at("result").at("ipc").number, 0.0);
}

TEST(CliSmoke, CompositionSpellingsCanonicalize) {
  // "fdp+l0" is the same machine as "fdp-l0"; reports carry the
  // canonical spelling so downstream keys never fork.
  std::string output;
  const int rc = run_cli(
      "run --preset fdp+l0 --bench eon --instrs 1000 --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_EQ(parse_json(output).at("preset").string, "fdp-l0");
}

TEST(CliSmoke, BadInputFailsWithUsage) {
  std::string output;
  EXPECT_NE(run_cli("frobnicate", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);

  EXPECT_NE(run_cli("run --preset no-such-preset", &output), 0);
  EXPECT_NE(output.find("unknown preset"), std::string::npos);
  // The error enumerates what IS registered (the set is open, so it is
  // built from the registry, not hardcoded in the message).
  for (const char* name : {"clgp-l0-pb16", "next-line", "stream"}) {
    EXPECT_NE(output.find(name), std::string::npos) << output;
  }

  EXPECT_NE(run_cli("run --bench no-such-benchmark", &output), 0);
  EXPECT_NE(output.find("unknown benchmark"), std::string::npos);
}

// --- trace subcommands ------------------------------------------------------

std::string fixture_path() {
  return std::string(PRESTAGE_TEST_DATA_DIR) + "/fixture.champsim.trace";
}

TEST(CliTrace, RecordThenReplayReportsIdenticalStats) {
  const std::string trace_file_path = test_file("roundtrip.pstr");
  const std::string record_json = test_file("record.json");
  const std::string replay_json = test_file("replay.json");
  std::string output;

  int rc = run_cli("trace record --preset clgp-l0-pb16 --bench eon "
                   "--instrs 3000 --out " + trace_file_path + " --json " +
                       record_json,
                   &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("wrote"), std::string::npos) << output;

  rc = run_cli("trace replay --preset clgp-l0-pb16 --instrs 3000 --trace " +
                   trace_file_path + " --json " + replay_json,
               &output);
  ASSERT_EQ(rc, 0) << output;

  const JsonValue rec = parse_json(read_file(record_json));
  const JsonValue rep = parse_json(read_file(replay_json));
  EXPECT_EQ(rec.at("schema").string, "prestage-trace-record-v1");
  EXPECT_EQ(rep.at("schema").string, "prestage-trace-replay-v1");
  EXPECT_EQ(rec.at("trace").at("format").string, "native");
  EXPECT_EQ(rep.at("trace").at("format").string, "native");
  EXPECT_GT(rec.at("trace").at("records").number, 3000.0);

  // Bit-identical replay: IPC, cycles and every fetch-source count match.
  const JsonValue& a = rec.at("result");
  const JsonValue& b = rep.at("result");
  EXPECT_EQ(a.at("ipc").number, b.at("ipc").number);
  EXPECT_EQ(a.at("cycles").number, b.at("cycles").number);
  check_breakdown(a.at("fetch_sources"));
  for (const char* source : {"PB", "il0", "il1", "ul2", "Mem"}) {
    EXPECT_EQ(a.at("fetch_sources").at(source).number,
              b.at("fetch_sources").at(source).number)
        << source;
  }
}

TEST(CliTrace, InfoDescribesANativeTrace) {
  const std::string trace_file_path = test_file("info.pstr");
  std::string output;
  ASSERT_EQ(run_cli("trace record --bench gzip --instrs 1000 --out " +
                        trace_file_path,
                    &output),
            0)
      << output;

  ASSERT_EQ(run_cli("trace info --trace " + trace_file_path + " --json -",
                    &output),
            0)
      << output;
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-trace-info-v1");
  EXPECT_EQ(doc.at("format").string, "native");
  EXPECT_EQ(doc.at("version").number, 1.0);
  EXPECT_EQ(doc.at("benchmark").string, "gzip");
  EXPECT_GT(doc.at("records").number, 1000.0);
  EXPECT_GT(doc.at("streams").number, 0.0);
}

TEST(CliTrace, ChampSimFixtureReplaysAndDescribes) {
  std::string output;
  ASSERT_EQ(run_cli("trace info --trace " + fixture_path() + " --json -",
                    &output),
            0)
      << output;
  const JsonValue info = parse_json(output);
  EXPECT_EQ(info.at("format").string, "champsim");
  EXPECT_EQ(info.at("records").number, 182.0);
  EXPECT_EQ(info.at("unique_pcs").number, 10.0);

  ASSERT_EQ(run_cli("trace replay --preset clgp --instrs 1500 --trace " +
                        fixture_path() + " --json -",
                    &output),
            0)
      << output;
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-trace-replay-v1");
  EXPECT_EQ(doc.at("trace").at("format").string, "champsim");
  EXPECT_GT(doc.at("result").at("ipc").number, 0.0);
  check_breakdown(doc.at("result").at("fetch_sources"));
}

TEST(CliTrace, ErrorPathsFailLoudly) {
  std::string output;
  // Missing subcommand / unknown subcommand.
  EXPECT_EQ(run_cli("trace", &output), 2);
  EXPECT_NE(output.find("subcommand"), std::string::npos);
  EXPECT_EQ(run_cli("trace frobnicate", &output), 2);

  // record needs --out; replay/info need --trace.
  EXPECT_EQ(run_cli("trace record --bench eon --instrs 100", &output), 2);
  EXPECT_NE(output.find("--out"), std::string::npos);
  EXPECT_EQ(run_cli("trace replay", &output), 2);
  EXPECT_NE(output.find("--trace"), std::string::npos);
  EXPECT_EQ(run_cli("trace info", &output), 2);

  // Missing file.
  EXPECT_EQ(run_cli("trace replay --trace " + test_file("gone.pstr"),
                    &output),
            1);
  EXPECT_NE(output.find("cannot open"), std::string::npos) << output;

  // Bad magic (not a multiple of the ChampSim record size either).
  const std::string bad_magic = test_file("bad_magic.pstr");
  { std::ofstream(bad_magic) << "this is not a trace"; }
  EXPECT_EQ(run_cli("trace replay --trace " + bad_magic, &output), 1);
  EXPECT_NE(output.find("unrecognized format"), std::string::npos)
      << output;
  EXPECT_EQ(run_cli("trace info --format native --trace " + bad_magic,
                    &output),
            1);
  EXPECT_NE(output.find("bad magic"), std::string::npos) << output;

  // Unsupported version.
  const std::string bad_version = test_file("bad_version.pstr");
  {
    std::ofstream out(bad_version, std::ios::binary);
    const char bytes[] = {'P', 'S', 'T', 'R', 9, 0, 0, 0};
    out.write(bytes, sizeof(bytes));
  }
  EXPECT_EQ(run_cli("trace info --trace " + bad_version, &output), 1);
  EXPECT_NE(output.find("unsupported trace version"), std::string::npos)
      << output;

  // Bad --format value is a usage error.
  EXPECT_EQ(run_cli("trace info --trace x --format tar", &output), 2);
  EXPECT_NE(output.find("--format"), std::string::npos);
}

// --- campaign subcommands ----------------------------------------------------

TEST(CliCampaign, RunStatusCompareReportFlow) {
  const std::string store = test_file("smoke.jsonl");
  std::remove(store.c_str());  // stores append: drop earlier runs' files
  std::remove((store + ".perf").c_str());  // and their perf sidecars
  const std::string bench_json = test_file("BENCH_smoke.json");
  const std::string common =
      "--name smoke --instrs 900 --store " + store;
  std::string output;

  int rc = run_cli("campaign run " + common + " -j 2 --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue run = parse_json(output);
  EXPECT_EQ(run.at("schema").string, "prestage-campaign-run-v1");
  EXPECT_EQ(run.at("total").number, 8.0);
  EXPECT_EQ(run.at("executed").number, 8.0);
  EXPECT_EQ(run.at("reused").number, 0.0);
  EXPECT_GT(run.at("host").at("host_seconds").number, 0.0);

  // Second run: everything is reused, nothing recomputes.
  rc = run_cli("campaign run " + common + " --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_EQ(parse_json(output).at("reused").number, 8.0);

  rc = run_cli("campaign status " + common + " --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue status = parse_json(output);
  EXPECT_EQ(status.at("schema").string, "prestage-campaign-status-v1");
  EXPECT_TRUE(status.at("complete").boolean);
  EXPECT_EQ(status.at("missing").number, 0.0);

  // A self-compare reports zero regressions and exits 0.
  rc = run_cli("campaign compare --baseline " + store + " --store " +
                   store + " --threshold 1.0 --json -",
               &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue cmp = parse_json(output);
  EXPECT_EQ(cmp.at("schema").string, "prestage-campaign-compare-v1");
  EXPECT_EQ(cmp.at("common").number, 8.0);
  EXPECT_EQ(cmp.at("regressions").array.size(), 0u);

  rc = run_cli("campaign report " + common + " --out " + bench_json,
               &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue report = parse_json(read_file(bench_json));
  EXPECT_EQ(report.at("schema").string, "prestage-campaign-report-v1");
  EXPECT_EQ(report.at("campaign").string, "smoke");
  EXPECT_EQ(report.at("kind").string, "ipc_vs_size");
  ASSERT_EQ(report.at("series").array.size(), 2u);
  for (const JsonValue& series : report.at("series").array) {
    ASSERT_EQ(series.at("hmean_ipc").array.size(), 2u);
    for (const JsonValue& v : series.at("hmean_ipc").array) {
      EXPECT_GT(v.number, 0.0);
    }
  }
  // The run above left a .perf sidecar, so the report carries the host
  // section (the BENCH perf trajectory).
  ASSERT_TRUE(report.has("host"));
  EXPECT_GT(report.at("host").at("host_seconds").number, 0.0);
  EXPECT_EQ(report.at("host").at("points").number, 8.0);
  EXPECT_FALSE(report.at("host").at("per_config").array.empty());
}

TEST(CliCampaign, PerfEmitsHostThroughputDoc) {
  const std::string store = test_file("perf.jsonl");
  std::remove(store.c_str());
  std::remove((store + ".perf").c_str());
  const std::string common = "--name smoke --instrs 600 --store " + store;
  std::string output;

  // Before any run there is no sidecar: record-only, but loud about it.
  EXPECT_EQ(run_cli("campaign perf " + common + " --out -", &output), 1);
  EXPECT_NE(output.find("no host telemetry"), std::string::npos) << output;

  ASSERT_EQ(run_cli("campaign run " + common + " -j 2", &output), 0)
      << output;
  const int rc = run_cli("campaign perf " + common + " --out -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-campaign-perf-v1");
  EXPECT_EQ(doc.at("campaign").string, "smoke");
  EXPECT_EQ(doc.at("points").number, 8.0);
  EXPECT_EQ(doc.at("dropped_lines").number, 0.0)
      << "a fresh sidecar must report zero torn lines";
  EXPECT_GT(doc.at("host_seconds").number, 0.0);
  EXPECT_GT(doc.at("minstr_per_sec").number, 0.0);
  const JsonValue& per_config = doc.at("per_config");
  ASSERT_EQ(per_config.kind, JsonValue::Kind::Array);
  ASSERT_EQ(per_config.array.size(), 2u);  // smoke grid: base + clgp-l0
  double summed = 0.0;
  for (const JsonValue& c : per_config.array) {
    EXPECT_FALSE(c.at("config").string.empty());
    EXPECT_GT(c.at("minstr_per_sec").number, 0.0);
    summed += c.at("host_seconds").number;
  }
  // Relative tolerance: %.10g-serialized doubles on a possibly slow host.
  EXPECT_NEAR(doc.at("host_seconds").number, summed,
              1e-9 + 1e-6 * summed);

  // A second generation at the same store path (different --instrs →
  // different keys) appends 8 more sidecar records, but the document is
  // scoped to the grid it names: still 8 points per budget, not 16.
  ASSERT_EQ(run_cli("campaign run --name smoke --instrs 450 --store " +
                        store + " -j 2",
                    &output),
            0)
      << output;
  ASSERT_EQ(run_cli("campaign perf " + common + " --out -", &output), 0);
  EXPECT_EQ(parse_json(output).at("points").number, 8.0);
  ASSERT_EQ(run_cli("campaign perf --name smoke --instrs 450 --store " +
                        store + " --out -",
                    &output),
            0);
  EXPECT_EQ(parse_json(output).at("points").number, 8.0);
}

TEST(CliCampaign, PerfMeasuredModeNeedsNoStore) {
  std::string output;
  const int rc = run_cli(
      "campaign perf --name smoke --instrs 300 --min-host-seconds 0.01 "
      "-j 1 --out -",
      &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-campaign-perf-v1");
  EXPECT_EQ(doc.at("campaign").string, "smoke");
  EXPECT_EQ(doc.at("store").string, "(measured)");
  EXPECT_TRUE(doc.at("cycle_skip").boolean);
  EXPECT_EQ(doc.at("min_host_seconds").number, 0.01);
  // The repeat loop folds whole passes: a multiple of the 8-point grid.
  const auto points = static_cast<std::uint64_t>(doc.at("points").number);
  EXPECT_GE(points, 8u);
  EXPECT_EQ(points % 8u, 0u);
  EXPECT_GT(doc.at("minstr_per_sec").number, 0.0);
  ASSERT_EQ(doc.at("per_config").array.size(), 2u);

  // The A/B lever is accepted and recorded in the document.
  ASSERT_EQ(run_cli("campaign perf --name smoke --instrs 300 "
                    "--min-host-seconds 0.005 --no-cycle-skip -j 1 --out -",
                    &output),
            0)
      << output;
  EXPECT_FALSE(parse_json(output).at("cycle_skip").boolean);
}

TEST(CliCampaign, PerfCompareGatesAgainstACommittedBaseline) {
  std::string output;
  // Measure a genuine document once, to copy the grid's canonical
  // per-config names into the doctored baselines below.
  ASSERT_EQ(run_cli("campaign perf --name smoke --instrs 300 "
                    "--min-host-seconds 0.005 -j 1 --out -",
                    &output),
            0)
      << output;
  const JsonValue real = parse_json(output);
  std::vector<std::string> configs;
  for (const JsonValue& c : real.at("per_config").array) {
    configs.push_back(c.at("config").string);
  }
  ASSERT_EQ(configs.size(), 2u);

  const auto doctored = [&configs](double rate) {
    std::ostringstream doc;
    doc << "{\"schema\":\"prestage-campaign-perf-v1\",\"campaign\":"
           "\"smoke\",\"points\":8,\"host_seconds\":1.0,"
           "\"minstr_per_sec\":"
        << rate << ",\"per_config\":[";
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (i > 0) doc << ",";
      doc << "{\"config\":\"" << configs[i]
          << "\",\"points\":4,\"host_seconds\":0.5,\"minstr_per_sec\":"
          << rate << "}";
    }
    doc << "]}";
    return doc.str();
  };

  // A seeded regression: an impossibly fast baseline makes every config
  // (and the total) regress beyond any slack -> exit 3.
  const std::string fast = test_file("fast-baseline.json");
  { std::ofstream out(fast); out << doctored(1e9); }
  const std::string measure =
      " --instrs 300 --min-host-seconds 0.005 -j 1";
  int rc = run_cli("campaign perf compare --baseline " + fast + measure,
                   &output);
  EXPECT_EQ(rc, 3) << output;
  EXPECT_NE(output.find("REGRESSED"), std::string::npos) << output;

  rc = run_cli(
      "campaign perf compare --baseline " + fast + measure + " --json -",
      &output);
  EXPECT_EQ(rc, 3) << output;
  const JsonValue gated = parse_json(output);
  EXPECT_EQ(gated.at("schema").string,
            "prestage-campaign-perf-compare-v1");
  EXPECT_FALSE(gated.at("ok").boolean);
  EXPECT_EQ(gated.at("regressions").number, 3.0);  // 2 configs + total
  EXPECT_EQ(gated.at("configs").array.size(), 2u);
  EXPECT_TRUE(gated.at("total").at("regressed").boolean);

  // An impossibly slow baseline: everything improves -> exit 0.
  const std::string slow = test_file("slow-baseline.json");
  { std::ofstream out(slow); out << doctored(1e-9); }
  rc = run_cli("campaign perf compare --baseline " + slow + measure,
               &output);
  EXPECT_EQ(rc, 0) << output;
  EXPECT_NE(output.find("0 regression(s)"), std::string::npos) << output;
}

TEST(CliCampaign, PerfCompareErrorPathsFailLoudly) {
  std::string output;
  EXPECT_EQ(run_cli("campaign perf compare", &output), 2);
  EXPECT_NE(output.find("--baseline"), std::string::npos) << output;

  EXPECT_EQ(run_cli("campaign perf compare --baseline " +
                        test_file("missing.json"),
                    &output),
            2);
  EXPECT_NE(output.find("does not exist"), std::string::npos) << output;

  // A JSON file that is not a perf document is rejected up front.
  const std::string bogus = test_file("bogus.json");
  { std::ofstream out(bogus); out << "{\"schema\": \"other\"}"; }
  EXPECT_EQ(run_cli("campaign perf compare --baseline " + bogus, &output),
            2);
  EXPECT_NE(output.find("prestage-campaign-perf-v1"), std::string::npos)
      << output;

  // A baseline naming no shared configs is a misconfiguration, not a
  // silent pass.
  const std::string foreign = test_file("foreign.json");
  {
    std::ofstream out(foreign);
    out << "{\"schema\":\"prestage-campaign-perf-v1\",\"campaign\":"
           "\"smoke\",\"points\":1,\"host_seconds\":1.0,"
           "\"minstr_per_sec\":1.0,\"per_config\":[{\"config\":"
           "\"no-such@000\",\"points\":1,\"host_seconds\":1.0,"
           "\"minstr_per_sec\":1.0}]}";
  }
  EXPECT_EQ(run_cli("campaign perf compare --baseline " + foreign +
                        " --instrs 200 --min-host-seconds 0.001 -j 1",
                    &output),
            2);
  EXPECT_NE(output.find("shares no configs"), std::string::npos) << output;
}

TEST(CliCampaign, ResumeRecomputesOnlyMissingPoints) {
  const std::string store = test_file("resume.jsonl");
  std::remove(store.c_str());  // stores append: drop earlier runs' files
  const std::string common =
      "--name smoke --instrs 700 --store " + store;
  std::string output;
  ASSERT_EQ(run_cli("campaign run " + common + " -j 2", &output), 0)
      << output;
  const std::string fresh = read_file(store);

  // Keep only the first 5 of 8 lines (a killed run's surviving prefix).
  std::istringstream lines(fresh);
  std::ostringstream partial;
  std::string line;
  for (int i = 0; i < 5 && std::getline(lines, line); ++i) {
    partial << line << '\n';
  }
  { std::ofstream out(store, std::ios::trunc); out << partial.str(); }

  const int rc =
      run_cli("campaign resume " + common + " -j 4 --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue resumed = parse_json(output);
  EXPECT_EQ(resumed.at("reused").number, 5.0);
  EXPECT_EQ(resumed.at("executed").number, 3.0);
  EXPECT_EQ(read_file(store), fresh) << "resume must reproduce the bytes";
}

TEST(CliCampaign, ErrorPathsFailLoudly) {
  std::string output;
  // Missing / unknown subcommand.
  EXPECT_EQ(run_cli("campaign", &output), 2);
  EXPECT_NE(output.find("subcommand"), std::string::npos);
  EXPECT_EQ(run_cli("campaign frobnicate", &output), 2);

  // Unknown campaign name, and the missing --name flag.
  EXPECT_EQ(run_cli("campaign run --name no-such-fig", &output), 2);
  EXPECT_NE(output.find("unknown campaign"), std::string::npos) << output;
  EXPECT_NE(output.find("fig5"), std::string::npos)
      << "error should list what exists: " << output;
  EXPECT_EQ(run_cli("campaign run", &output), 2);
  EXPECT_NE(output.find("--name"), std::string::npos);

  // Resume without a store is an error (run would create one).
  EXPECT_EQ(run_cli("campaign resume --name smoke --store " +
                        test_file("gone.jsonl"),
                    &output),
            1);
  EXPECT_NE(output.find("nothing to resume"), std::string::npos) << output;

  // Bad threshold values are usage errors.
  EXPECT_EQ(run_cli("campaign compare --baseline a --store b "
                    "--threshold -3",
                    &output),
            2);
  EXPECT_NE(output.find("--threshold"), std::string::npos) << output;
  EXPECT_EQ(run_cli("campaign compare --baseline a --store b "
                    "--threshold nan",
                    &output),
            2);

  // Compare with a missing store file.
  EXPECT_EQ(run_cli("campaign compare --baseline " +
                        test_file("nope.jsonl") + " --store " +
                        test_file("nope.jsonl"),
                    &output),
            2);
  EXPECT_NE(output.find("does not exist"), std::string::npos) << output;

  // Stores with no overlapping run points must not pass as "zero
  // regressions" — that is a misconfigured CI gate, not a clean result.
  const std::string empty_a = test_file("empty_a.jsonl");
  const std::string empty_b = test_file("empty_b.jsonl");
  { std::ofstream(empty_a) << "\n"; }
  { std::ofstream(empty_b) << "\n"; }
  EXPECT_EQ(run_cli("campaign compare --baseline " + empty_a +
                        " --store " + empty_b,
                    &output),
            2);
  EXPECT_NE(output.find("share no run points"), std::string::npos)
      << output;

  // Report over an absent/incomplete store.
  EXPECT_EQ(run_cli("campaign report --name smoke --store " +
                        test_file("empty.jsonl") + " --out " +
                        test_file("never.json"),
                    &output),
            1);
  EXPECT_NE(output.find("covers only"), std::string::npos) << output;

  // Bad --jobs value.
  EXPECT_EQ(run_cli("campaign run --name smoke --jobs many", &output), 2);
  EXPECT_NE(output.find("--jobs"), std::string::npos) << output;

  // Bad fault-tolerance flag values.
  EXPECT_EQ(run_cli("campaign run --name smoke --retries 99", &output), 2);
  EXPECT_NE(output.find("--retries"), std::string::npos) << output;
  EXPECT_EQ(run_cli("campaign run --name smoke --point-budget -1",
                    &output),
            2);
  EXPECT_NE(output.find("--point-budget"), std::string::npos) << output;
}

TEST(CliFaults, ListEmitsEverySiteAndTheArmedSpec) {
  std::string output;
  int rc = run_cli("faults list --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue doc = parse_json(output);
  EXPECT_EQ(doc.at("schema").string, "prestage-faults-v1");
  EXPECT_EQ(doc.at("armed_count").number, 0.0);
  EXPECT_TRUE(doc.at("armed").array.empty());
  ASSERT_EQ(doc.at("sites").array.size(), 6u);
  bool saw_store_append = false;
  for (const JsonValue& site : doc.at("sites").array) {
    if (site.at("name").string == "store.append") {
      saw_store_append = true;
      EXPECT_TRUE(site.at("torn_supported").boolean);
    }
    if (site.at("name").string == "point.execute") {
      EXPECT_FALSE(site.at("torn_supported").boolean);
    }
  }
  EXPECT_TRUE(saw_store_append);

  rc = run_cli_env("PRESTAGE_FAULTS=point.execute:fail@key=beef",
                   "faults list --json -", &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue armed = parse_json(output);
  EXPECT_EQ(armed.at("armed_count").number, 1.0);
  ASSERT_EQ(armed.at("armed").array.size(), 1u);
  EXPECT_EQ(armed.at("armed").array[0].string,
            "point.execute:fail@key=beef");
}

TEST(CliFaults, MalformedSpecIsAUsageError) {
  std::string output;
  // The spec is validated before any subcommand runs — even `list`,
  // which would not hit a single fault site.
  EXPECT_EQ(run_cli_env("PRESTAGE_FAULTS=bogus.site:fail", "list", &output),
            2);
  EXPECT_NE(output.find("bad PRESTAGE_FAULTS"), std::string::npos)
      << output;
  EXPECT_NE(output.find("store.append"), std::string::npos)
      << "error should list the valid sites: " << output;
  EXPECT_EQ(run_cli_env("PRESTAGE_FAULTS=store.append:fail@every=x",
                        "faults list", &output),
            2);
  EXPECT_EQ(
      run_cli_env("PRESTAGE_FAULTS=point.execute:torn", "list", &output),
      2);
  EXPECT_NE(output.find("append site"), std::string::npos) << output;
}

TEST(CliFaults, SeededFaultQuarantinesThenRecoversByteIdentical) {
  const std::string store = test_file("quarantine.jsonl");
  std::remove(store.c_str());
  std::remove((store + ".perf").c_str());
  std::remove((store + ".failures").c_str());
  const std::string ref_store = test_file("quarantine-ref.jsonl");
  std::remove(ref_store.c_str());
  const std::string common = "--name smoke --instrs 700 ";
  std::string output;

  // Reference bytes: the same grid never faulted.
  ASSERT_EQ(run_cli("campaign run " + common + "--store " + ref_store +
                        " -j 2",
                    &output),
            0)
      << output;
  // Victim: an interior grid point's key, read from the reference store.
  std::istringstream lines(read_file(ref_store));
  std::string line;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(std::getline(lines, line));
  const std::string victim = parse_json(line).at("key").string;

  int rc = run_cli_env("PRESTAGE_FAULTS=point.execute:fail@key=" + victim,
                       "campaign run " + common + "--store " + store +
                           " -j 2 --json -",
                       &output);
  EXPECT_EQ(rc, 4) << "quarantine has its own exit code: " << output;
  const JsonValue run = parse_json(output);
  EXPECT_EQ(run.at("quarantined").number, 1.0);
  ASSERT_EQ(run.at("failures").array.size(), 1u);
  const JsonValue& failure = run.at("failures").array[0];
  EXPECT_EQ(failure.at("key").string, victim);
  EXPECT_EQ(failure.at("error_class").string, "FaultInjected");
  EXPECT_EQ(failure.at("attempts").number, 2.0);

  rc = run_cli("campaign status " + common + "--store " + store +
                   " --json -",
               &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue before = parse_json(output);
  EXPECT_EQ(before.at("quarantined").number, 1.0);
  EXPECT_EQ(before.at("recovered").number, 0.0);
  EXPECT_EQ(before.at("missing").number, 1.0);

  // Disarmed resume re-runs the quarantined point and converges on the
  // never-faulted bytes; the failure record flips to "recovered".
  rc = run_cli("campaign resume " + common + "--store " + store + " -j 2",
               &output);
  ASSERT_EQ(rc, 0) << output;
  EXPECT_EQ(read_file(store), read_file(ref_store));

  rc = run_cli("campaign status " + common + "--store " + store +
                   " --json -",
               &output);
  ASSERT_EQ(rc, 0) << output;
  const JsonValue after = parse_json(output);
  EXPECT_EQ(after.at("quarantined").number, 0.0);
  EXPECT_EQ(after.at("recovered").number, 1.0);
  EXPECT_TRUE(after.at("complete").boolean);
}

TEST(CliFaults, StrictModeFailsFastWithPointIdentity) {
  const std::string store = test_file("strict.jsonl");
  std::remove(store.c_str());
  std::string output;
  const int rc = run_cli_env(
      "PRESTAGE_FAULTS=point.execute:fail@1",
      "campaign run --name smoke --instrs 700 --store " + store +
          " -j 1 --strict",
      &output);
  EXPECT_EQ(rc, 1) << output;
  EXPECT_NE(output.find("run point"), std::string::npos)
      << "strict error must name the point: " << output;
  EXPECT_NE(output.find("injected fault"), std::string::npos) << output;
}

TEST(CliFaults, SampleRunFallsBackOnCorruptCheckpoint) {
  const std::string plan = test_file("corrupt.psck");
  { std::ofstream out(plan, std::ios::trunc); out << "not a checkpoint"; }
  std::string output;
  const int rc = run_cli("sample run --bench eon --instrs 3000 --plan " +
                             plan + " --json -",
                         &output);
  ASSERT_EQ(rc, 0) << "a corrupt checkpoint degrades, never aborts: "
                   << output;
  // stderr carries the warning; stdout stays a parseable document.
  const std::size_t json_start = output.find('{');
  ASSERT_NE(json_start, std::string::npos) << output;
  EXPECT_NE(output.find("falling back to a fresh plan"), std::string::npos)
      << output;
  const JsonValue doc = parse_json(output.substr(json_start));
  EXPECT_TRUE(doc.at("checkpoint_fallback").boolean);
  EXPECT_GE(doc.at("result").at("cold_starts").number, 1.0);

  // A checkpoint for the wrong workload stays a hard usage error.
  const std::string other = test_file("other.psck");
  ASSERT_EQ(run_cli("sample plan --bench gzip --instrs 3000 --out " + other,
                    &output),
            0)
      << output;
  EXPECT_EQ(run_cli("sample run --bench eon --instrs 3000 --plan " + other,
                    &output),
            2);
  EXPECT_NE(output.find("was built for workload"), std::string::npos)
      << output;
}

}  // namespace
