// JsonWriter/json::parse coverage: escaping of every control character,
// non-finite doubles as null, compact-vs-pretty styles, and parser error
// paths. The campaign store round-trips arbitrary stat values through
// this pair, so writer output must always re-parse to the same data.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hpp"
#include "common/json_writer.hpp"
#include "common/prestage_assert.hpp"

namespace {

using prestage::JsonWriter;
namespace json = prestage::json;

std::string write_string_value(const std::string& s) {
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::Compact);
  json.begin_object();
  json.field("s", s);
  json.end_object();
  return out.str();
}

TEST(JsonWriter, EscapesQuotesBackslashesAndNamedControls) {
  EXPECT_EQ(write_string_value("a\"b"), R"({"s":"a\"b"})");
  EXPECT_EQ(write_string_value("a\\b"), R"({"s":"a\\b"})");
  EXPECT_EQ(write_string_value("a\nb"), R"({"s":"a\nb"})");
  EXPECT_EQ(write_string_value("a\rb"), R"({"s":"a\rb"})");
  EXPECT_EQ(write_string_value("a\tb"), R"({"s":"a\tb"})");
  EXPECT_EQ(write_string_value("a\bb"), R"({"s":"a\bb"})");
  EXPECT_EQ(write_string_value("a\fb"), R"({"s":"a\fb"})");
}

TEST(JsonWriter, EscapesEveryRemainingControlCharacterAsU) {
  // \x01 and \x1f have no shorthand; both must become \u00XX (and the
  // high bit must not leak through the char -> unsigned conversion).
  EXPECT_EQ(write_string_value(std::string(1, '\x01')), R"({"s":"\u0001"})");
  EXPECT_EQ(write_string_value(std::string(1, '\x1f')), R"({"s":"\u001f"})");
  // Every control character round-trips through the parser.
  for (int c = 1; c < 0x20; ++c) {
    const std::string original(1, static_cast<char>(c));
    const json::Value doc = json::parse(write_string_value(original));
    EXPECT_EQ(doc.at("s").as_string(), original) << "control char " << c;
  }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::Compact);
  json.begin_object();
  json.field("nan", std::numeric_limits<double>::quiet_NaN());
  json.field("inf", std::numeric_limits<double>::infinity());
  json.field("ninf", -std::numeric_limits<double>::infinity());
  json.field("ok", 1.5);
  json.end_object();
  EXPECT_EQ(out.str(), R"({"nan":null,"inf":null,"ninf":null,"ok":1.5})");

  const json::Value doc = json::parse(out.str());
  EXPECT_TRUE(doc.at("nan").is_null());
  EXPECT_TRUE(doc.at("inf").is_null());
  EXPECT_TRUE(doc.at("ninf").is_null());
  EXPECT_EQ(doc.at("ok").as_number(), 1.5);
}

TEST(JsonWriter, CompactStyleIsOneLineWithNoTrailingNewline) {
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::Compact);
  json.begin_object();
  json.field("a", std::uint64_t{1});
  json.key("b");
  json.begin_array();
  json.value(std::uint64_t{2});
  json.value("x");
  json.end_array();
  json.end_object();
  EXPECT_TRUE(json.done());
  EXPECT_EQ(out.str(), R"({"a":1,"b":[2,"x"]})");
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
}

TEST(JsonWriter, PrettyStyleIndentsAndEndsWithNewline) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("a", std::uint64_t{1});
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}\n");
}

TEST(JsonWriter, MisuseTripsAssert) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("a");
  EXPECT_THROW(json.key("b"), prestage::SimError);  // two keys in a row
}

TEST(JsonParser, ParsesNestedDocumentsAndAllScalarKinds) {
  const json::Value doc = json::parse(
      R"({"obj":{"n":-2.5e3,"t":true,"f":false,"z":null},"arr":[1,"two"]})");
  EXPECT_EQ(doc.at("obj").at("n").as_number(), -2500.0);
  EXPECT_TRUE(doc.at("obj").at("t").boolean);
  EXPECT_FALSE(doc.at("obj").at("f").boolean);
  EXPECT_TRUE(doc.at("obj").at("z").is_null());
  ASSERT_EQ(doc.at("arr").array.size(), 2u);
  EXPECT_EQ(doc.at("arr").array[1].as_string(), "two");
  EXPECT_TRUE(doc.has("obj"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_THROW((void)doc.at("missing"), json::JsonError);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), json::JsonError);
  EXPECT_THROW(json::parse("{"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":1,}"), json::JsonError);
  EXPECT_THROW(json::parse("[1,2"), json::JsonError);
  EXPECT_THROW(json::parse("\"unterminated"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":1,\"a\":2}"), json::JsonError);
  EXPECT_THROW(json::parse("1.2.3"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":\"\\q\"}"), json::JsonError);
  EXPECT_THROW(json::parse("nul"), json::JsonError);
}

TEST(JsonParser, RejectsExcessiveNestingInsteadOfOverflowingTheStack) {
  // The campaign store feeds untrusted lines to the parser; a deeply
  // nested document must fail with JsonError, not SIGSEGV.
  EXPECT_THROW(json::parse(std::string(100000, '[')), json::JsonError);
  // Depth within the cap still parses.
  std::string ok = std::string(100, '[') + std::string(100, ']');
  EXPECT_EQ(json::parse(ok).kind, json::Value::Kind::Array);
}

TEST(JsonParser, CheckedAccessorsValidateKinds) {
  const json::Value doc = json::parse(R"({"s":"x","n":3})");
  EXPECT_THROW((void)doc.at("s").as_number(), json::JsonError);
  EXPECT_THROW((void)doc.at("n").as_string(), json::JsonError);
}

}  // namespace
