// MemSystem stress tests.
//
// 1. Equivalence: the optimized arbiter (slot pool + lazy-upgrade grant
//    heap + completion heap) must deliver exactly what a naive reference
//    model delivers — same grants, same (ready, seq)-ordered completion
//    stream, same counters — under randomized submit/writeback/merge
//    traffic. The reference model is a direct transcription of the
//    pre-optimization implementation: linear scans over pending and
//    in-service vectors.
//
// 2. Allocation freedom: once warmed to its working-set high-water mark,
//    MemSystem::submit/tick must not touch the heap. The test overrides
//    global operator new/delete in this binary to count allocations
//    around the steady-state phase.
//
// The replacement operators are malloc/free-backed; GCC's
// -Wmismatched-new-delete pairs an inlined `new T` with the free()
// inside the replaced delete and misfires at -O1 (the sanitizer
// presets). The replacement is globally consistent, so silence the
// false positive for this binary.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "mem/memsys.hpp"

// --- allocation counting hook ----------------------------------------------
// Overridden for the whole test binary; the counter is only inspected
// around regions that exercise nothing but MemSystem.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace prestage::mem {
namespace {

// --- reference model ---------------------------------------------------

/// The pre-optimization MemSystem, kept as the behavioral oracle: O(n)
/// scans, map rebuilds, std::function callbacks. Slow and obviously
/// correct.
class RefMemSystem {
 public:
  using Callback = std::function<void(FetchSource, Cycle)>;

  explicit RefMemSystem(const MemSystemConfig& config)
      : config_(config),
        l2_(config.l2_size_bytes, config.l2_line_bytes, config.l2_assoc) {}

  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t merges = 0;
  std::uint64_t grants[kNumReqTypes] = {};
  std::uint64_t bus_busy_cycles = 0;

  void submit(ReqType type, Addr addr, Cycle /*now*/, Callback cb) {
    const Addr line = line_align(addr, config_.l1_line_bytes);
    for (Txn& t : in_service_) {
      if (t.line == line) {
        t.callbacks.push_back(std::move(cb));
        ++merges;
        return;
      }
    }
    for (Txn& t : pending_) {
      if (!t.is_writeback && t.line == line) {
        if (static_cast<int>(type) < static_cast<int>(t.type)) {
          t.type = type;
        }
        t.callbacks.push_back(std::move(cb));
        ++merges;
        return;
      }
    }
    Txn t;
    t.line = line;
    t.type = type;
    t.seq = next_seq_++;
    t.callbacks.push_back(std::move(cb));
    pending_.push_back(std::move(t));
  }

  void submit_writeback(Addr addr, Cycle /*now*/) {
    Txn t;
    t.line = line_align(addr, config_.l2_line_bytes);
    t.type = ReqType::Data;
    t.seq = next_seq_++;
    t.is_writeback = true;
    pending_.push_back(std::move(t));
  }

  [[nodiscard]] bool in_flight(Addr addr) const {
    const Addr line = line_align(addr, config_.l1_line_bytes);
    for (const Txn& t : in_service_) {
      if (t.line == line) return true;
    }
    for (const Txn& t : pending_) {
      if (!t.is_writeback && t.line == line) return true;
    }
    return false;
  }

  void tick(Cycle now) {
    deliver(now);
    grant(now);
  }

  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }

 private:
  struct Txn {
    Addr line = kNoAddr;
    ReqType type = ReqType::IPrefetch;
    std::uint64_t seq = 0;
    Cycle ready = kNoCycle;
    FetchSource source = FetchSource::L2;
    bool is_writeback = false;
    std::vector<Callback> callbacks;
  };

  void deliver(Cycle now) {
    for (;;) {
      std::size_t best = in_service_.size();
      for (std::size_t i = 0; i < in_service_.size(); ++i) {
        if (in_service_[i].ready > now) continue;
        if (best == in_service_.size() ||
            in_service_[i].ready < in_service_[best].ready ||
            (in_service_[i].ready == in_service_[best].ready &&
             in_service_[i].seq < in_service_[best].seq)) {
          best = i;
        }
      }
      if (best == in_service_.size()) return;
      Txn t = std::move(in_service_[best]);
      in_service_.erase(in_service_.begin() +
                        static_cast<std::ptrdiff_t>(best));
      for (Callback& cb : t.callbacks) cb(t.source, t.ready);
    }
  }

  void grant(Cycle now) {
    if (now < bus_free_at_ || pending_.empty()) return;
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      const Txn& a = pending_[i];
      const Txn& b = pending_[best];
      if (static_cast<int>(a.type) < static_cast<int>(b.type) ||
          (a.type == b.type && a.seq < b.seq)) {
        best = i;
      }
    }
    Txn t = std::move(pending_[best]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));

    ++grants[static_cast<std::size_t>(t.type)];
    const Cycle transfer =
        std::max<Cycle>(1, config_.l1_line_bytes / config_.transfer_bytes);
    bus_free_at_ = now + transfer;
    bus_busy_cycles += transfer;

    if (t.is_writeback) {
      ++writebacks;
      l2_.insert(t.line, /*dirty=*/true);
      return;
    }
    if (l2_.access(t.line)) {
      ++l2_hits;
      t.source = FetchSource::L2;
      t.ready = now + static_cast<Cycle>(config_.l2_latency);
    } else {
      ++l2_misses;
      t.source = FetchSource::Memory;
      t.ready = now + static_cast<Cycle>(config_.l2_latency) +
                static_cast<Cycle>(config_.mem_latency);
      l2_.insert(line_align(t.line, config_.l2_line_bytes));
    }
    in_service_.push_back(std::move(t));
  }

  MemSystemConfig config_;
  SetAssocCache l2_;
  std::vector<Txn> pending_;
  std::vector<Txn> in_service_;
  Cycle bus_free_at_ = 0;
  std::uint64_t next_seq_ = 0;
};

// --- equivalence stress --------------------------------------------------

/// One delivered completion, tagged with the submission it answers.
struct Event {
  std::uint64_t submission;
  FetchSource source;
  Cycle ready;

  bool operator==(const Event& other) const = default;
};

MemSystemConfig stress_config() {
  MemSystemConfig cfg;
  cfg.l2_size_bytes = 1 << 14U;  // small L2: plenty of misses + evictions
  cfg.l2_latency = 7;
  cfg.mem_latency = 31;
  return cfg;
}

/// Drives @p submit / @p writeback / @p tick with a deterministic random
/// schedule: bursty submissions over a small line pool (merge-heavy),
/// occasional writebacks, and occasional multi-cycle gaps.
template <typename SubmitFn, typename WritebackFn, typename TickFn>
void drive(std::uint64_t seed, const SubmitFn& submit,
           const WritebackFn& writeback, const TickFn& tick) {
  Rng rng(seed);
  std::uint64_t submission = 0;
  Cycle now = 0;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    const std::uint64_t burst = rng.below(4);  // 0..3 submissions
    for (std::uint64_t i = 0; i < burst; ++i) {
      const auto type = static_cast<ReqType>(rng.below(3));
      const Addr addr = rng.below(96) * 64 + rng.below(64);
      submit(type, addr, now, submission++);
    }
    if (rng.chance(0.15)) writeback(rng.below(96) * 64, now);
    tick(now);
    now += 1 + rng.below(3) * (rng.chance(0.2) ? 1 : 0);  // jittered gaps
  }
  // Drain: no new traffic, enough cycles for the longest fill.
  for (int i = 0; i < 300; ++i) tick(now++);
}

TEST(MemSystemStress, MatchesNaiveReferenceModel) {
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL, 91ULL}) {
    MemSystem opt(stress_config());
    RefMemSystem ref(stress_config());
    std::vector<Event> opt_events;
    std::vector<Event> ref_events;

    drive(
        seed,
        [&](ReqType type, Addr addr, Cycle now, std::uint64_t id) {
          opt.submit(type, addr, now, [&opt_events, id](FetchSource s,
                                                        Cycle r) {
            opt_events.push_back({id, s, r});
          });
          ref.submit(type, addr, now, [&ref_events, id](FetchSource s,
                                                        Cycle r) {
            ref_events.push_back({id, s, r});
          });
          EXPECT_EQ(opt.in_flight(addr), ref.in_flight(addr));
        },
        [&](Addr addr, Cycle now) {
          opt.submit_writeback(addr, now);
          ref.submit_writeback(addr, now);
        },
        [&](Cycle now) {
          opt.tick(now);
          ref.tick(now);
        });

    // Identical completion stream: same submissions answered, with the
    // same sources and ready cycles, in the same (ready, seq) order.
    ASSERT_EQ(opt_events.size(), ref_events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < opt_events.size(); ++i) {
      ASSERT_TRUE(opt_events[i] == ref_events[i])
          << "seed " << seed << " event " << i << ": submission "
          << opt_events[i].submission << " vs " << ref_events[i].submission;
    }
    EXPECT_GT(opt_events.size(), 0u);

    EXPECT_EQ(opt.l2_hits.value(), ref.l2_hits);
    EXPECT_EQ(opt.l2_misses.value(), ref.l2_misses);
    EXPECT_EQ(opt.writebacks.value(), ref.writebacks);
    EXPECT_EQ(opt.merges.value(), ref.merges);
    EXPECT_EQ(opt.bus_busy_cycles.value(), ref.bus_busy_cycles);
    for (int t = 0; t < kNumReqTypes; ++t) {
      EXPECT_EQ(opt.grants[static_cast<std::size_t>(t)].value(),
                ref.grants[t])
          << "grant class " << t;
    }
    EXPECT_EQ(opt.l2().valid_lines(), ref.l2().valid_lines());
  }
}

TEST(MemSystemStress, HorizonQueriesAreInertAndNeverLate) {
  // Same randomized schedule as the reference-model test, but with
  // next_event_cycle() interleaved before every tick. Two contracts:
  // the query is const (the completion stream still matches the
  // query-free reference exactly), and it is never late — whenever it
  // reports the next event strictly past `now`, ticking `now` must
  // deliver no completion and issue no grant. Conservative-early
  // horizons are allowed (wasted speed); a late one is a timing bug
  // the cycle skip would silently commit.
  for (const std::uint64_t seed : {5ULL, 29ULL, 73ULL}) {
    MemSystem opt(stress_config());
    RefMemSystem ref(stress_config());
    std::vector<Event> opt_events;
    std::vector<Event> ref_events;

    drive(
        seed,
        [&](ReqType type, Addr addr, Cycle now, std::uint64_t id) {
          opt.submit(type, addr, now, [&opt_events, id](FetchSource s,
                                                        Cycle r) {
            opt_events.push_back({id, s, r});
          });
          ref.submit(type, addr, now, [&ref_events, id](FetchSource s,
                                                        Cycle r) {
            ref_events.push_back({id, s, r});
          });
        },
        [&](Addr addr, Cycle now) {
          opt.submit_writeback(addr, now);
          ref.submit_writeback(addr, now);
        },
        [&](Cycle now) {
          const Cycle horizon = opt.next_event_cycle(now);
          const std::size_t events_before = opt_events.size();
          std::uint64_t grants_before = 0;
          for (const auto& g : opt.grants) grants_before += g.value();
          opt.tick(now);
          ref.tick(now);
          if (horizon > now) {
            EXPECT_EQ(opt_events.size(), events_before)
                << "seed " << seed << ": completion inside idle horizon "
                << horizon << " at cycle " << now;
            std::uint64_t grants_after = 0;
            for (const auto& g : opt.grants) grants_after += g.value();
            EXPECT_EQ(grants_after, grants_before)
                << "seed " << seed << ": grant inside idle horizon "
                << horizon << " at cycle " << now;
          }
        });

    ASSERT_EQ(opt_events.size(), ref_events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < opt_events.size(); ++i) {
      ASSERT_TRUE(opt_events[i] == ref_events[i])
          << "seed " << seed << " event " << i;
    }
    EXPECT_GT(opt_events.size(), 0u);
  }
}

// --- allocation freedom ---------------------------------------------------

/// One round of representative steady-state traffic over a fixed line
/// pool: demand fills, prefetches, merges, writebacks, and full drains.
void traffic_round(MemSystem& ms, Cycle& now, std::uint64_t& sink) {
  Rng rng(now + 1);  // deterministic per-round schedule
  for (int cycle = 0; cycle < 400; ++cycle) {
    const std::uint64_t burst = rng.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const auto type = static_cast<ReqType>(rng.below(3));
      ms.submit(type, rng.below(64) * 64, now,
                [&sink](FetchSource, Cycle ready) { sink += ready; });
    }
    if (rng.chance(0.2)) ms.submit_writeback(rng.below(64) * 128, now);
    ms.tick(now++);
  }
  for (int i = 0; i < 300; ++i) ms.tick(now++);  // drain
}

TEST(MemSystemAlloc, SteadyStateSubmitAndTickAreAllocationFree) {
  MemSystem ms(stress_config());
  Cycle now = 0;
  std::uint64_t sink = 0;

  // Warm to the working-set high-water mark: every pool, heap and map
  // grows during the first rounds and is reused afterwards.
  for (int round = 0; round < 3; ++round) traffic_round(ms, now, sink);

  const std::uint64_t before = g_allocations.load();
  traffic_round(ms, now, sink);
  const std::uint64_t after = g_allocations.load();

  EXPECT_EQ(after - before, 0u)
      << "steady-state MemSystem traffic allocated " << (after - before)
      << " times";
  EXPECT_GT(sink, 0u);  // completions really fired
}

}  // namespace
}  // namespace prestage::mem
