// Golden-number regression tests: pinned simulator outputs so silent
// drift in any subsystem fails CTest loudly.
//
// The pins cover all ten of the paper's presets plus the registry's
// extra prefetcher families (next-line, stream) over a fixed
// 3-benchmark subset at a small instruction budget. The simulator is
// fully deterministic, so IPC is pinned to 1e-9 and fetch-source
// counters exactly.
//
// If a change INTENTIONALLY alters simulated behaviour (new timing
// model, calibration fix), re-pin by running this binary with
// --gtest_filter='Golden.*' and copying the reported actual values —
// and say so in the commit message. Refactors, parallelism changes and
// I/O work must NOT move these numbers.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/presets.hpp"

namespace prestage::sim {
namespace {

constexpr std::uint64_t kInstrs = 6000;
const std::vector<std::string> kBenchmarks = {"eon", "gzip", "mcf"};

struct GoldenSources {
  std::uint64_t pb = 0;
  std::uint64_t l0 = 0;
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t mem = 0;
};

struct Golden {
  std::string preset;
  double hmean_ipc = 0.0;
  double ipc[3] = {0.0, 0.0, 0.0};  ///< eon, gzip, mcf
  GoldenSources fetch;
};

void check(const Golden& g) {
  const auto cfg = make_config(g.preset, cacti::TechNode::um045, 4096);
  const SuiteResult r = run_suite(cfg, kBenchmarks, kInstrs);
  ASSERT_EQ(r.per_benchmark.size(), kBenchmarks.size());
  EXPECT_NEAR(r.hmean_ipc, g.hmean_ipc, 1e-9);
  for (std::size_t i = 0; i < kBenchmarks.size(); ++i) {
    EXPECT_NEAR(r.per_benchmark[i].ipc, g.ipc[i], 1e-9)
        << kBenchmarks[i];
  }
  const SourceBreakdown sources = r.fetch_sources();
  EXPECT_EQ(sources.count(FetchSource::PreBuffer), g.fetch.pb);
  EXPECT_EQ(sources.count(FetchSource::L0), g.fetch.l0);
  EXPECT_EQ(sources.count(FetchSource::L1), g.fetch.l1);
  EXPECT_EQ(sources.count(FetchSource::L2), g.fetch.l2);
  EXPECT_EQ(sources.count(FetchSource::Memory), g.fetch.mem);
}

TEST(Golden, BasePreset) {
  check({.preset = "base",
         .hmean_ipc = 0.4047629004248976,
         .ipc = {0.37584565271861686, 0.56494728915662651,
                 0.33545754374196435},
         .fetch = {.pb = 0, .l0 = 0, .l1 = 2249, .l2 = 14, .mem = 26}});
}

TEST(Golden, BaseIdealPreset) {
  check({.preset = "base-ideal",
         .hmean_ipc = 0.42337091453727782,
         .ipc = {0.38694698826260804, 0.62986672263616328,
                 0.34316921141419338},
         .fetch = {.pb = 0, .l0 = 0, .l1 = 2434, .l2 = 15, .mem = 26}});
}

TEST(Golden, BaseL0Preset) {
  check({.preset = "base-l0",
         .hmean_ipc = 0.41763559007954765,
         .ipc = {0.38439361906592351, 0.60859866152910158,
                 0.34028919761837256},
         .fetch = {.pb = 0, .l0 = 1882, .l1 = 516, .l2 = 15, .mem = 26}});
}

TEST(Golden, BasePipelinedPreset) {
  check({.preset = "base-pipelined",
         .hmean_ipc = 0.42096530985102953,
         .ipc = {0.3849361647526785, 0.62358441558441557,
                 0.34187888110294534},
         .fetch = {.pb = 0, .l0 = 0, .l1 = 2435, .l2 = 16, .mem = 26}});
}

TEST(Golden, FdpPreset) {
  check({.preset = "fdp",
         .hmean_ipc = 0.43780590540863101,
         .ipc = {0.40581670612106863, 0.66570541259982252,
                 0.34649806570818176},
         .fetch = {.pb = 17, .l0 = 0, .l1 = 2254, .l2 = 24, .mem = 4}});
}

TEST(Golden, FdpL0Preset) {
  check({.preset = "fdp-l0",
         .hmean_ipc = 0.4484272971039297,
         .ipc = {0.41427880963888697, 0.69556147873449992,
                 0.35229540918163671},
         .fetch = {.pb = 337, .l0 = 1922, .l1 = 176, .l2 = 29, .mem = 4}});
}

TEST(Golden, FdpL0Pb16Preset) {
  check({.preset = "fdp-l0-pb16",
         .hmean_ipc = 0.45469006476401358,
         .ipc = {0.41666666666666669, 0.7160582199952279,
                 0.35696865147819878},
         .fetch = {.pb = 431, .l0 = 1911, .l1 = 120, .l2 = 28, .mem = 3}});
}

TEST(Golden, ClgpPreset) {
  check({.preset = "clgp",
         .hmean_ipc = 0.44540963860235305,
         .ipc = {0.41359343765078926, 0.69195296287756514,
                 0.34814642919301503},
         .fetch = {.pb = 2444, .l0 = 0, .l1 = 24, .l2 = 17, .mem = 4}});
}

TEST(Golden, ClgpL0Preset) {
  check({.preset = "clgp-l0",
         .hmean_ipc = 0.44569635295462506,
         .ipc = {0.4139643990616807, 0.69235205906102204,
                 0.34830808520517731},
         .fetch = {.pb = 2414, .l0 = 51, .l1 = 1, .l2 = 17, .mem = 4}});
}

TEST(Golden, ClgpL0Pb16Preset) {
  check({.preset = "clgp-l0-pb16",
         .hmean_ipc = 0.45788148110627441,
         .ipc = {0.42022692253817062, 0.74355797819623393,
                 0.35368656804384985},
         .fetch = {.pb = 2463, .l0 = 32, .l1 = 1, .l2 = 17, .mem = 3}});
}

// The two sequential/stream families newly reachable through the
// registry (next-line was dead code before it; stream is the registry's
// proof-of-extension scheme). Pinned like the paper's three so registry
// plumbing changes cannot silently alter what these presets simulate.

TEST(Golden, NextLinePreset) {
  check({.preset = "next-line",
         .hmean_ipc = 0.42538214233554694,
         .ipc = {0.39341682512622123, 0.62657897484079761,
                 0.34309073237665083},
         .fetch = {.pb = 40, .l0 = 0, .l1 = 2261, .l2 = 0, .mem = 12}});
}

TEST(Golden, NextLineL0Preset) {
  check({.preset = "next-line-l0",
         .hmean_ipc = 0.43265021960061251,
         .ipc = {0.39790437031633397, 0.65260411003588126,
                 0.34619822314526366},
         .fetch = {.pb = 338, .l0 = 1900, .l1 = 205, .l2 = 6, .mem = 12}});
}

TEST(Golden, StreamPreset) {
  check({.preset = "stream",
         .hmean_ipc = 0.41193070051908887,
         .ipc = {0.37921880925293894, 0.59384584941129914,
                 0.33762799594913917},
         .fetch = {.pb = 765, .l0 = 0, .l1 = 1503, .l2 = 14, .mem = 26}});
}

TEST(Golden, StreamL0Preset) {
  check({.preset = "stream-l0",
         .hmean_ipc = 0.42014998335194981,
         .ipc = {0.38513383400731754, 0.62023354345354964,
                 0.34112096407457937},
         .fetch = {.pb = 210, .l0 = 1893, .l1 = 310, .l2 = 15, .mem = 26}});
}

// The MANA and program-map families (registered by this repo's later
// growth): grammar round-trips first — the composition grammar has to
// pick up new registered names without a presets-table edit — then
// pinned runs including one node / pre-buffer variant each.

TEST(Golden, NewFamilySpecsRoundTripThroughTheGrammar) {
  const struct {
    const char* spec;
    const char* canonical;
  } kCases[] = {
      {"mana", "mana"},
      {"mana+l0", "mana-l0"},
      {"mana-l0", "mana-l0"},
      {"mana+pb16", "mana-pb16"},
      {"mana-l0@0.09um", "mana-l0@090"},
      {"program-map", "program-map"},
      {"program-map+l0", "program-map-l0"},
      {"program-map+pb16+l0", "program-map-l0-pb16"},
      {"program-map@090", "program-map@090"},
  };
  for (const auto& kase : kCases) {
    const auto c = parse_spec(kase.spec);
    ASSERT_TRUE(c.has_value()) << kase.spec;
    EXPECT_EQ(canonical_name(*c), kase.canonical) << kase.spec;
    EXPECT_EQ(parse_spec(canonical_name(*c)), c) << kase.spec;
  }
}

TEST(Golden, ManaPreset) {
  check({.preset = "mana",
         .hmean_ipc = 0.40792680972889894,
         .ipc = {0.37688442211055279, 0.57589714066398001,
                 0.33732433951658236},
         .fetch = {.pb = 219, .l0 = 0, .l1 = 2037, .l2 = 14, .mem = 26}});
}

TEST(Golden, ManaL0Preset) {
  check({.preset = "mana-l0",
         .hmean_ipc = 0.42035597411283165,
         .ipc = {0.38503497401013925, 0.62087514223647455,
                 0.34141207259486828},
         .fetch = {.pb = 163, .l0 = 1887, .l1 = 363, .l2 = 15, .mem = 26}});
}

TEST(Golden, ManaNodeVariantPreset) {
  check({.preset = "mana@090",
         .hmean_ipc = 0.42626881510707815,
         .ipc = {0.39246467817896391, 0.61157530059099241,
                 0.35030062459868078},
         .fetch = {.pb = 250, .l0 = 0, .l1 = 2043, .l2 = 17, .mem = 26}});
}

TEST(Golden, ProgramMapPreset) {
  check({.preset = "program-map",
         .hmean_ipc = 0.40737314618739867,
         .ipc = {0.37681341455755823, 0.56961184397836195,
                 0.33842770133092714},
         .fetch = {.pb = 758, .l0 = 0, .l1 = 1524, .l2 = 14, .mem = 26}});
}

TEST(Golden, ProgramMapL0Preset) {
  check({.preset = "program-map-l0",
         .hmean_ipc = 0.41938666191449669,
         .ipc = {0.38481272447408926, 0.61521115211152111,
                 0.34139264990328821},
         .fetch = {.pb = 189, .l0 = 1892, .l1 = 330, .l2 = 15, .mem = 26}});
}

TEST(Golden, ProgramMapPb16VariantPreset) {
  check({.preset = "program-map-pb16",
         .hmean_ipc = 0.40653603186542059,
         .ipc = {0.37671877943115462, 0.56917970602181134,
                 0.3369266183818988},
         .fetch = {.pb = 792, .l0 = 0, .l1 = 1486, .l2 = 14, .mem = 26}});
}

}  // namespace
}  // namespace prestage::sim
